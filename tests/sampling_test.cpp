//===- tests/sampling_test.cpp - SamplingTester unit tests ----------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// First coverage for sim/SamplingTester: the configuration-count
/// arithmetic, deterministic replay under a fixed seed, zero failures
/// within the correctable weight, agreement with an exhaustive
/// enumeration on a small code, and the single-kind/basis restrictions
/// the fuzzing refuter relies on.
///
//===----------------------------------------------------------------------===//

#include "pauli/Tableau.h"
#include "qec/Codes.h"
#include "sim/SamplingTester.h"

#include <gtest/gtest.h>

#include <functional>

using namespace veriqec;

TEST(SamplingTester, ErrorConfigurationCount) {
  EXPECT_EQ(errorConfigurationCount(7, 0), 1u);
  EXPECT_EQ(errorConfigurationCount(7, 1), 22u);   // 1 + 7*3
  EXPECT_EQ(errorConfigurationCount(3, 3), 64u);   // 4^3: all Pauli strings
  EXPECT_EQ(errorConfigurationCount(5, 2), 106u);  // 1 + 15 + 90
  EXPECT_EQ(errorConfigurationCount(1000, 500), UINT64_MAX); // saturates
}

TEST(SamplingTester, DeterministicForFixedSeed) {
  StabilizerCode Code = makeSteaneCode();
  LookupDecoder Dec(Code, 2);
  Rng R1(1234), R2(1234);
  SamplingReport A = sampleMemoryCorrection(Code, Dec, 2, 500, R1);
  SamplingReport B = sampleMemoryCorrection(Code, Dec, 2, 500, R2);
  EXPECT_EQ(A.Samples, B.Samples);
  EXPECT_EQ(A.Failures, B.Failures);
  EXPECT_EQ(A.DistinctPatterns, B.DistinctPatterns);
}

TEST(SamplingTester, NoFailuresWithinCorrectableWeight) {
  // Weight <= (d-1)/2 errors against a minimum-weight decoder can never
  // produce a logical error; any failure is a simulator/decoder bug.
  for (StabilizerCode Code :
       {makeSteaneCode(), makeFiveQubitCode(), makeRotatedSurfaceCode(3)}) {
    LookupDecoder Dec(Code, (Code.Distance - 1) / 2);
    Rng R(7);
    SamplingReport Report = sampleMemoryCorrection(
        Code, Dec, (Code.Distance - 1) / 2, 1000, R);
    EXPECT_EQ(Report.Failures, 0u) << Code.Name;
    EXPECT_EQ(Report.Samples, 1000u);
    EXPECT_GT(Report.DistinctPatterns, 1u);
  }
}

namespace {

/// Reference enumeration: runs the exact tableau procedure of the
/// sampling loop for one concrete error and reports a logical failure.
bool failsUnder(const StabilizerCode &Code, Decoder &Dec,
                const Pauli &Error) {
  Rng R(99);
  Tableau State(Code.NumQubits);
  for (size_t Q = 0; Q != Code.NumQubits; ++Q)
    State.applyGate(GateKind::H, Q);
  for (const Pauli &G : Code.Generators)
    State.measure(G, R, false);
  for (const Pauli &LZ : Code.LogicalZ)
    State.measure(LZ, R, false);
  State.applyPauli(Error);
  BitVector Syndrome(Code.Generators.size());
  for (size_t I = 0; I != Code.Generators.size(); ++I)
    if (State.measure(Code.Generators[I], R))
      Syndrome.set(I);
  std::optional<Pauli> Corr = Dec.decode(Syndrome);
  if (!Corr)
    return true;
  State.applyPauli(*Corr);
  for (const Pauli &LZ : Code.LogicalZ)
    if (!State.isStabilizedBy(LZ))
      return true;
  for (const Pauli &G : Code.Generators)
    if (!State.isStabilizedBy(G))
      return true;
  return false;
}

/// All error patterns of weight exactly W with arbitrary letters.
void forEachError(const StabilizerCode &Code, size_t W, size_t FromQubit,
                  Pauli &Current, const std::function<void(const Pauli &)> &F) {
  if (W == 0) {
    F(Current);
    return;
  }
  for (size_t Q = FromQubit; Q != Code.NumQubits; ++Q)
    for (PauliKind K : {PauliKind::X, PauliKind::Y, PauliKind::Z}) {
      Current.setKind(Q, K);
      forEachError(Code, W - 1, Q + 1, Current, F);
      Current.setKind(Q, PauliKind::I);
    }
}

} // namespace

TEST(SamplingTester, AgreesWithBruteForceEnumeration) {
  // Five-qubit code, weight-2 errors (beyond the correctable radius):
  // exhaustive enumeration and sampling must agree that failures exist,
  // and at weight 1 that none do.
  StabilizerCode Code = makeFiveQubitCode();
  LookupDecoder Dec(Code, 2);

  uint64_t BruteFailuresW1 = 0, BruteFailuresW2 = 0;
  Pauli Scratch(Code.NumQubits);
  forEachError(Code, 1, 0, Scratch, [&](const Pauli &E) {
    BruteFailuresW1 += failsUnder(Code, Dec, E.abs());
  });
  forEachError(Code, 2, 0, Scratch, [&](const Pauli &E) {
    BruteFailuresW2 += failsUnder(Code, Dec, E.abs());
  });
  EXPECT_EQ(BruteFailuresW1, 0u);
  EXPECT_GT(BruteFailuresW2, 0u);

  Rng R(2024);
  SamplingReport W1 = sampleMemoryCorrection(Code, Dec, 1, 1500, R);
  EXPECT_EQ(W1.Failures, 0u);
  SamplingReport W2 = sampleMemoryCorrection(Code, Dec, 2, 1500, R);
  EXPECT_GT(W2.Failures, 0u);
  // Sampling visits a subset of what enumeration covers, never more: the
  // failure *rate* cannot exceed the enumerated weight-<=2 failure share
  // by more than noise; sanity-check it is far below 100%.
  EXPECT_LT(W2.Failures, W2.Samples);
}

TEST(SamplingTester, SingleKindRestrictionMirrorsScenarios) {
  // Z errors on the repetition code: invisible to the Z family, fatal to
  // the X family — exactly the verifier's basis split.
  StabilizerCode Code = makeRepetitionCode(3);
  LookupDecoder Dec(Code, 1);
  SamplingOptions OnlyZ;
  OnlyZ.OnlyKind = PauliKind::Z;

  Rng R1(5);
  SamplingReport ZFamily =
      sampleMemoryCorrection(Code, Dec, 1, 400, R1, OnlyZ);
  EXPECT_EQ(ZFamily.Failures, 0u);

  SamplingOptions OnlyZX = OnlyZ;
  OnlyZX.XBasis = true;
  Rng R2(5);
  SamplingReport XFamily =
      sampleMemoryCorrection(Code, Dec, 1, 400, R2, OnlyZX);
  EXPECT_GT(XFamily.Failures, 0u);
}
