//===- tests/sat_test.cpp - CDCL solver unit tests -------------------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//

#include "sat/Solver.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace veriqec;
using namespace veriqec::sat;

namespace {

/// Brute-force satisfiability for cross-checking (n <= 20).
bool bruteForceSat(size_t NumVars,
                   const std::vector<std::vector<Lit>> &Clauses) {
  for (uint64_t Mask = 0; Mask != (uint64_t{1} << NumVars); ++Mask) {
    bool AllSat = true;
    for (const auto &C : Clauses) {
      bool ClauseSat = false;
      for (Lit L : C) {
        bool V = (Mask >> L.var()) & 1;
        if (V != L.negated()) {
          ClauseSat = true;
          break;
        }
      }
      if (!ClauseSat) {
        AllSat = false;
        break;
      }
    }
    if (AllSat)
      return true;
  }
  return false;
}

} // namespace

TEST(LubySequence, FirstValues) {
  // 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
  const uint64_t Expected[] = {1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8};
  for (size_t I = 0; I != std::size(Expected); ++I)
    EXPECT_EQ(lubySequence(I + 1), Expected[I]) << "index " << I + 1;
}

TEST(Solver, EmptyFormulaIsSat) {
  Solver S;
  EXPECT_EQ(S.solve(), SolveResult::Sat);
}

TEST(Solver, UnitPropagationChain) {
  Solver S;
  Var A = S.newVar(), B = S.newVar(), C = S.newVar();
  S.addClause(mkLit(A));
  S.addClause(~mkLit(A), mkLit(B));
  S.addClause(~mkLit(B), mkLit(C));
  ASSERT_EQ(S.solve(), SolveResult::Sat);
  EXPECT_TRUE(S.modelValue(A));
  EXPECT_TRUE(S.modelValue(B));
  EXPECT_TRUE(S.modelValue(C));
}

TEST(Solver, ContradictoryUnitsAreUnsat) {
  Solver S;
  Var A = S.newVar();
  S.addClause(mkLit(A));
  EXPECT_FALSE(S.addClause(~mkLit(A)));
  EXPECT_EQ(S.solve(), SolveResult::Unsat);
}

TEST(Solver, SimpleBacktrackingInstance) {
  Solver S;
  Var A = S.newVar(), B = S.newVar();
  S.addClause(mkLit(A), mkLit(B));
  S.addClause(mkLit(A), ~mkLit(B));
  S.addClause(~mkLit(A), mkLit(B));
  ASSERT_EQ(S.solve(), SolveResult::Sat);
  EXPECT_TRUE(S.modelValue(A));
  EXPECT_TRUE(S.modelValue(B));
}

TEST(Solver, XorChainUnsat) {
  // a^b=1, b^c=1, a^c=1 is unsatisfiable (sum of all three is 1 = 0).
  Solver S;
  Var A = S.newVar(), B = S.newVar(), C = S.newVar();
  auto addXorEq1 = [&](Var X, Var Y) {
    S.addClause(mkLit(X), mkLit(Y));
    S.addClause(~mkLit(X), ~mkLit(Y));
  };
  addXorEq1(A, B);
  addXorEq1(B, C);
  addXorEq1(A, C);
  EXPECT_EQ(S.solve(), SolveResult::Unsat);
}

TEST(Solver, PigeonholePrinciple) {
  // 5 pigeons into 4 holes: UNSAT and requires real conflict analysis.
  const int Pigeons = 5, Holes = 4;
  Solver S;
  std::vector<std::vector<Var>> P(Pigeons, std::vector<Var>(Holes));
  for (int I = 0; I != Pigeons; ++I)
    for (int J = 0; J != Holes; ++J)
      P[I][J] = S.newVar();
  for (int I = 0; I != Pigeons; ++I) {
    std::vector<Lit> C;
    for (int J = 0; J != Holes; ++J)
      C.push_back(mkLit(P[I][J]));
    S.addClause(C);
  }
  for (int J = 0; J != Holes; ++J)
    for (int I1 = 0; I1 != Pigeons; ++I1)
      for (int I2 = I1 + 1; I2 != Pigeons; ++I2)
        S.addClause(~mkLit(P[I1][J]), ~mkLit(P[I2][J]));
  EXPECT_EQ(S.solve(), SolveResult::Unsat);
  EXPECT_GT(S.stats().Conflicts, 0u);
}

TEST(Solver, AssumptionsRestrictAndRelease) {
  Solver S;
  Var A = S.newVar(), B = S.newVar();
  S.addClause(mkLit(A), mkLit(B));
  EXPECT_EQ(S.solve({~mkLit(A), ~mkLit(B)}), SolveResult::Unsat);
  // The formula itself stays satisfiable afterwards.
  EXPECT_EQ(S.solve(), SolveResult::Sat);
  EXPECT_EQ(S.solve({~mkLit(A)}), SolveResult::Sat);
  EXPECT_TRUE(S.modelValue(B));
}

TEST(Solver, ConflictBudgetAborts) {
  // A hard pigeonhole instance with a tiny budget must abort.
  const int Pigeons = 9, Holes = 8;
  Solver S;
  std::vector<std::vector<Var>> P(Pigeons, std::vector<Var>(Holes));
  for (int I = 0; I != Pigeons; ++I)
    for (int J = 0; J != Holes; ++J)
      P[I][J] = S.newVar();
  for (int I = 0; I != Pigeons; ++I) {
    std::vector<Lit> C;
    for (int J = 0; J != Holes; ++J)
      C.push_back(mkLit(P[I][J]));
    S.addClause(C);
  }
  for (int J = 0; J != Holes; ++J)
    for (int I1 = 0; I1 != Pigeons; ++I1)
      for (int I2 = I1 + 1; I2 != Pigeons; ++I2)
        S.addClause(~mkLit(P[I1][J]), ~mkLit(P[I2][J]));
  S.setConflictBudget(10);
  EXPECT_EQ(S.solve(), SolveResult::Aborted);
}

TEST(Solver, RandomInstancesMatchBruteForce) {
  Rng R(99);
  for (int Trial = 0; Trial != 200; ++Trial) {
    size_t NumVars = 4 + R.nextBelow(9); // 4..12
    size_t NumClauses = 2 + R.nextBelow(5 * NumVars);
    std::vector<std::vector<Lit>> Clauses;
    for (size_t C = 0; C != NumClauses; ++C) {
      size_t Len = 1 + R.nextBelow(3);
      std::vector<Lit> Clause;
      for (size_t L = 0; L != Len; ++L)
        Clause.push_back(
            Lit(static_cast<Var>(R.nextBelow(NumVars)), R.nextBool()));
      Clauses.push_back(std::move(Clause));
    }

    Solver S;
    for (size_t V = 0; V != NumVars; ++V)
      S.newVar();
    bool AddOk = true;
    for (const auto &C : Clauses)
      AddOk = S.addClause(C) && AddOk;
    SolveResult Res = AddOk ? S.solve() : SolveResult::Unsat;
    bool Expected = bruteForceSat(NumVars, Clauses);
    ASSERT_EQ(Res == SolveResult::Sat, Expected) << "trial " << Trial;

    // Any reported model must satisfy every clause.
    if (Res == SolveResult::Sat) {
      for (const auto &C : Clauses) {
        bool Sat = false;
        for (Lit L : C)
          Sat |= S.modelValue(L.var()) != L.negated();
        EXPECT_TRUE(Sat);
      }
    }
  }
}

TEST(Solver, RepeatedSolvesAreConsistent) {
  Rng R(123);
  Solver S;
  const size_t NumVars = 30;
  for (size_t V = 0; V != NumVars; ++V)
    S.newVar();
  for (size_t C = 0; C != 80; ++C) {
    std::vector<Lit> Clause;
    for (size_t L = 0; L != 3; ++L)
      Clause.push_back(
          Lit(static_cast<Var>(R.nextBelow(NumVars)), R.nextBool()));
    S.addClause(Clause);
  }
  SolveResult First = S.solve();
  for (int I = 0; I != 5; ++I)
    EXPECT_EQ(S.solve(), First);
}

TEST(Solver, ReuseAcrossAssumptionSetsStaysSound) {
  // Regression test: a learnt clause that backjumps below the assumption
  // prefix must not be reported as UNSAT-under-assumptions, and solver
  // state carried across solve() calls (learnt clauses, saved phases,
  // level-0 units) must never flip a verdict. A reused solver is checked
  // against a fresh one on every assumption cube of many random formulas.
  Rng R(2025);
  for (int Trial = 0; Trial != 20; ++Trial) {
    const size_t NumVars = 14;
    std::vector<std::vector<Lit>> Clauses;
    for (size_t C = 0; C != 50; ++C) {
      std::vector<Lit> Clause;
      for (size_t L = 0; L != 3; ++L)
        Clause.push_back(
            Lit(static_cast<Var>(R.nextBelow(NumVars)), R.nextBool()));
      Clauses.push_back(Clause);
    }
    Solver Reused;
    for (size_t V = 0; V != NumVars; ++V)
      Reused.newVar();
    bool Ok = true;
    for (const auto &C : Clauses)
      Ok = Reused.addClause(C) && Ok;
    if (!Ok)
      continue;

    for (int Cube = 0; Cube != 16; ++Cube) {
      std::vector<Lit> Assumptions;
      for (int B = 0; B != 4; ++B)
        Assumptions.push_back(
            Lit(static_cast<Var>(B), (Cube >> B) & 1));
      Solver Fresh;
      for (size_t V = 0; V != NumVars; ++V)
        Fresh.newVar();
      for (const auto &C : Clauses)
        Fresh.addClause(C);
      SolveResult A = Reused.solve(Assumptions);
      SolveResult B = Fresh.solve(Assumptions);
      ASSERT_EQ(A, B) << "trial " << Trial << " cube " << Cube;
      if (A == SolveResult::Sat)
        for (const auto &C : Clauses) {
          bool SatC = false;
          for (Lit L : C)
            SatC |= Reused.modelValue(L.var()) != L.negated();
          EXPECT_TRUE(SatC) << "trial " << Trial << " cube " << Cube;
        }
    }
  }
}
