//===- tests/sat_test.cpp - CDCL solver unit tests -------------------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//

#include "sat/Solver.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace veriqec;
using namespace veriqec::sat;

namespace {

/// Brute-force satisfiability for cross-checking (n <= 20).
bool bruteForceSat(size_t NumVars,
                   const std::vector<std::vector<Lit>> &Clauses) {
  for (uint64_t Mask = 0; Mask != (uint64_t{1} << NumVars); ++Mask) {
    bool AllSat = true;
    for (const auto &C : Clauses) {
      bool ClauseSat = false;
      for (Lit L : C) {
        bool V = (Mask >> L.var()) & 1;
        if (V != L.negated()) {
          ClauseSat = true;
          break;
        }
      }
      if (!ClauseSat) {
        AllSat = false;
        break;
      }
    }
    if (AllSat)
      return true;
  }
  return false;
}

} // namespace

TEST(LubySequence, FirstValues) {
  // 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
  const uint64_t Expected[] = {1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8};
  for (size_t I = 0; I != std::size(Expected); ++I)
    EXPECT_EQ(lubySequence(I + 1), Expected[I]) << "index " << I + 1;
}

TEST(Solver, EmptyFormulaIsSat) {
  Solver S;
  EXPECT_EQ(S.solve(), SolveResult::Sat);
}

TEST(Solver, UnitPropagationChain) {
  Solver S;
  Var A = S.newVar(), B = S.newVar(), C = S.newVar();
  S.addClause(mkLit(A));
  S.addClause(~mkLit(A), mkLit(B));
  S.addClause(~mkLit(B), mkLit(C));
  ASSERT_EQ(S.solve(), SolveResult::Sat);
  EXPECT_TRUE(S.modelValue(A));
  EXPECT_TRUE(S.modelValue(B));
  EXPECT_TRUE(S.modelValue(C));
}

TEST(Solver, ContradictoryUnitsAreUnsat) {
  Solver S;
  Var A = S.newVar();
  S.addClause(mkLit(A));
  EXPECT_FALSE(S.addClause(~mkLit(A)));
  EXPECT_EQ(S.solve(), SolveResult::Unsat);
}

TEST(Solver, SimpleBacktrackingInstance) {
  Solver S;
  Var A = S.newVar(), B = S.newVar();
  S.addClause(mkLit(A), mkLit(B));
  S.addClause(mkLit(A), ~mkLit(B));
  S.addClause(~mkLit(A), mkLit(B));
  ASSERT_EQ(S.solve(), SolveResult::Sat);
  EXPECT_TRUE(S.modelValue(A));
  EXPECT_TRUE(S.modelValue(B));
}

TEST(Solver, XorChainUnsat) {
  // a^b=1, b^c=1, a^c=1 is unsatisfiable (sum of all three is 1 = 0).
  Solver S;
  Var A = S.newVar(), B = S.newVar(), C = S.newVar();
  auto addXorEq1 = [&](Var X, Var Y) {
    S.addClause(mkLit(X), mkLit(Y));
    S.addClause(~mkLit(X), ~mkLit(Y));
  };
  addXorEq1(A, B);
  addXorEq1(B, C);
  addXorEq1(A, C);
  EXPECT_EQ(S.solve(), SolveResult::Unsat);
}

TEST(Solver, PigeonholePrinciple) {
  // 5 pigeons into 4 holes: UNSAT and requires real conflict analysis.
  const int Pigeons = 5, Holes = 4;
  Solver S;
  std::vector<std::vector<Var>> P(Pigeons, std::vector<Var>(Holes));
  for (int I = 0; I != Pigeons; ++I)
    for (int J = 0; J != Holes; ++J)
      P[I][J] = S.newVar();
  for (int I = 0; I != Pigeons; ++I) {
    std::vector<Lit> C;
    for (int J = 0; J != Holes; ++J)
      C.push_back(mkLit(P[I][J]));
    S.addClause(C);
  }
  for (int J = 0; J != Holes; ++J)
    for (int I1 = 0; I1 != Pigeons; ++I1)
      for (int I2 = I1 + 1; I2 != Pigeons; ++I2)
        S.addClause(~mkLit(P[I1][J]), ~mkLit(P[I2][J]));
  EXPECT_EQ(S.solve(), SolveResult::Unsat);
  EXPECT_GT(S.stats().Conflicts, 0u);
}

TEST(Solver, AssumptionsRestrictAndRelease) {
  Solver S;
  Var A = S.newVar(), B = S.newVar();
  S.addClause(mkLit(A), mkLit(B));
  EXPECT_EQ(S.solve({~mkLit(A), ~mkLit(B)}), SolveResult::Unsat);
  // The formula itself stays satisfiable afterwards.
  EXPECT_EQ(S.solve(), SolveResult::Sat);
  EXPECT_EQ(S.solve({~mkLit(A)}), SolveResult::Sat);
  EXPECT_TRUE(S.modelValue(B));
}

TEST(Solver, ConflictBudgetAborts) {
  // A hard pigeonhole instance with a tiny budget must abort.
  const int Pigeons = 9, Holes = 8;
  Solver S;
  std::vector<std::vector<Var>> P(Pigeons, std::vector<Var>(Holes));
  for (int I = 0; I != Pigeons; ++I)
    for (int J = 0; J != Holes; ++J)
      P[I][J] = S.newVar();
  for (int I = 0; I != Pigeons; ++I) {
    std::vector<Lit> C;
    for (int J = 0; J != Holes; ++J)
      C.push_back(mkLit(P[I][J]));
    S.addClause(C);
  }
  for (int J = 0; J != Holes; ++J)
    for (int I1 = 0; I1 != Pigeons; ++I1)
      for (int I2 = I1 + 1; I2 != Pigeons; ++I2)
        S.addClause(~mkLit(P[I1][J]), ~mkLit(P[I2][J]));
  S.setConflictBudget(10);
  EXPECT_EQ(S.solve(), SolveResult::Aborted);
}

TEST(Solver, RandomInstancesMatchBruteForce) {
  Rng R(99);
  for (int Trial = 0; Trial != 200; ++Trial) {
    size_t NumVars = 4 + R.nextBelow(9); // 4..12
    size_t NumClauses = 2 + R.nextBelow(5 * NumVars);
    std::vector<std::vector<Lit>> Clauses;
    for (size_t C = 0; C != NumClauses; ++C) {
      size_t Len = 1 + R.nextBelow(3);
      std::vector<Lit> Clause;
      for (size_t L = 0; L != Len; ++L)
        Clause.push_back(
            Lit(static_cast<Var>(R.nextBelow(NumVars)), R.nextBool()));
      Clauses.push_back(std::move(Clause));
    }

    Solver S;
    for (size_t V = 0; V != NumVars; ++V)
      S.newVar();
    bool AddOk = true;
    for (const auto &C : Clauses)
      AddOk = S.addClause(C) && AddOk;
    SolveResult Res = AddOk ? S.solve() : SolveResult::Unsat;
    bool Expected = bruteForceSat(NumVars, Clauses);
    ASSERT_EQ(Res == SolveResult::Sat, Expected) << "trial " << Trial;

    // Any reported model must satisfy every clause.
    if (Res == SolveResult::Sat) {
      for (const auto &C : Clauses) {
        bool Sat = false;
        for (Lit L : C)
          Sat |= S.modelValue(L.var()) != L.negated();
        EXPECT_TRUE(Sat);
      }
    }
  }
}

TEST(Solver, RepeatedSolvesAreConsistent) {
  Rng R(123);
  Solver S;
  const size_t NumVars = 30;
  for (size_t V = 0; V != NumVars; ++V)
    S.newVar();
  for (size_t C = 0; C != 80; ++C) {
    std::vector<Lit> Clause;
    for (size_t L = 0; L != 3; ++L)
      Clause.push_back(
          Lit(static_cast<Var>(R.nextBelow(NumVars)), R.nextBool()));
    S.addClause(Clause);
  }
  SolveResult First = S.solve();
  for (int I = 0; I != 5; ++I)
    EXPECT_EQ(S.solve(), First);
}

TEST(Solver, ReuseAcrossAssumptionSetsStaysSound) {
  // Regression test: a learnt clause that backjumps below the assumption
  // prefix must not be reported as UNSAT-under-assumptions, and solver
  // state carried across solve() calls (learnt clauses, saved phases,
  // level-0 units) must never flip a verdict. A reused solver is checked
  // against a fresh one on every assumption cube of many random formulas.
  Rng R(2025);
  for (int Trial = 0; Trial != 20; ++Trial) {
    const size_t NumVars = 14;
    std::vector<std::vector<Lit>> Clauses;
    for (size_t C = 0; C != 50; ++C) {
      std::vector<Lit> Clause;
      for (size_t L = 0; L != 3; ++L)
        Clause.push_back(
            Lit(static_cast<Var>(R.nextBelow(NumVars)), R.nextBool()));
      Clauses.push_back(Clause);
    }
    Solver Reused;
    for (size_t V = 0; V != NumVars; ++V)
      Reused.newVar();
    bool Ok = true;
    for (const auto &C : Clauses)
      Ok = Reused.addClause(C) && Ok;
    if (!Ok)
      continue;

    for (int Cube = 0; Cube != 16; ++Cube) {
      std::vector<Lit> Assumptions;
      for (int B = 0; B != 4; ++B)
        Assumptions.push_back(
            Lit(static_cast<Var>(B), (Cube >> B) & 1));
      Solver Fresh;
      for (size_t V = 0; V != NumVars; ++V)
        Fresh.newVar();
      for (const auto &C : Clauses)
        Fresh.addClause(C);
      SolveResult A = Reused.solve(Assumptions);
      SolveResult B = Fresh.solve(Assumptions);
      ASSERT_EQ(A, B) << "trial " << Trial << " cube " << Cube;
      if (A == SolveResult::Sat)
        for (const auto &C : Clauses) {
          bool SatC = false;
          for (Lit L : C)
            SatC |= Reused.modelValue(L.var()) != L.negated();
          EXPECT_TRUE(SatC) << "trial " << Trial << " cube " << Cube;
        }
    }
  }
}

// ---- Clause-arena and reduceDB battery -------------------------------------

#include "proof/ProofCheck.h"
#include "proof/ProofLog.h"
#include "smt/CubeSolver.h"

namespace {

/// Pigeonhole PHP(Pigeons, Holes): UNSAT when Pigeons > Holes, and hard
/// enough for CDCL to restart and reduce — the workload the arena
/// battery needs.
std::vector<std::vector<Lit>> pigeonholeClauses(size_t Pigeons, size_t Holes,
                                                size_t &NumVars) {
  NumVars = Pigeons * Holes;
  auto VarOf = [Holes](size_t P, size_t H) {
    return static_cast<Var>(P * Holes + H);
  };
  std::vector<std::vector<Lit>> Clauses;
  for (size_t P = 0; P != Pigeons; ++P) {
    std::vector<Lit> C;
    for (size_t H = 0; H != Holes; ++H)
      C.push_back(mkLit(VarOf(P, H)));
    Clauses.push_back(std::move(C));
  }
  for (size_t H = 0; H != Holes; ++H)
    for (size_t P = 0; P != Pigeons; ++P)
      for (size_t Q = P + 1; Q != Pigeons; ++Q)
        Clauses.push_back({~mkLit(VarOf(P, H)), ~mkLit(VarOf(Q, H))});
  return Clauses;
}

} // namespace

TEST(ReduceDB, LearntDbStaysPinnedAndArenaIsCompacted) {
  // Regression test for the reduceDB accounting bug: the trigger used to
  // count only unlocked candidates, so the learnt DB (and the memory
  // behind it) could grow far past MaxLearned, and deleted clauses were
  // tombstoned but never reclaimed. With the live-learnt trigger and the
  // arena collector the DB stays pinned near the cap and the arena
  // shrinks back after compaction.
  size_t NumVars = 0;
  std::vector<std::vector<Lit>> Clauses = pigeonholeClauses(9, 8, NumVars);
  Solver S;
  for (size_t V = 0; V != NumVars; ++V)
    S.newVar();
  for (const auto &C : Clauses)
    ASSERT_TRUE(S.addClause(C));
  S.setMaxLearned(64);
  S.setGarbageFraction(0.2);
  EXPECT_EQ(S.solve(), SolveResult::Unsat);
  // Enough work to have cycled the DB many times over.
  EXPECT_GT(S.stats().Conflicts, 1000u);
  EXPECT_GT(S.stats().LearnedClauses, S.liveLearnts());
  // The pin: reductions happen on restarts, so the DB can overshoot the
  // cap by at most one restart interval of fresh lemmas.
  EXPECT_LE(S.liveLearnts(), 1024u);
  // Deleted clauses were really reclaimed, not just tombstoned.
  EXPECT_GE(S.stats().Compactions, 1u);
  EXPECT_GT(S.stats().WastedBytes, 0u);
  EXPECT_LT(S.arenaBytes(), S.stats().ArenaBytes);
}

TEST(ClauseArena, RelocationPreservesVerdictsAndModelCounts) {
  // Verdict + model-count equality with compaction forced after every
  // solver call vs. disabled, across both cardinality encodings and
  // xor on/off. The forced collector relocates every live clause each
  // round (watchers, reasons, proof-id words and all), so any stale
  // ClauseRef shows up as a wrong verdict, a corrupted model, or a
  // crash.
  using smt::BoolContext;
  using smt::CardinalityEncoding;
  using smt::ExprRef;
  constexpr size_t N = 8;
  BoolContext Ctx;
  std::vector<std::string> Names;
  std::vector<ExprRef> Vars;
  for (size_t I = 0; I != N; ++I) {
    Names.push_back("e" + std::to_string(I));
    Vars.push_back(Ctx.mkVar(Names.back()));
  }
  ExprRef Root = Ctx.mkAnd({Ctx.mkAtMost(Vars, 3), Ctx.mkAtLeast(Vars, 2),
                            Ctx.mkXor(Vars[0], Vars[N - 1])});
  // Ground truth over the named variables by exhaustive evaluation.
  size_t Expected = 0;
  for (uint64_t Mask = 0; Mask != (uint64_t{1} << N); ++Mask) {
    std::vector<bool> A;
    for (size_t I = 0; I != N; ++I)
      A.push_back((Mask >> I) & 1);
    Expected += Ctx.evaluate(Root, A);
  }
  ASSERT_GT(Expected, 0u);

  for (CardinalityEncoding Enc : {CardinalityEncoding::SequentialCounter,
                                  CardinalityEncoding::PairwiseNaive}) {
    for (bool NativeXor : {false, true}) {
      smt::SolveOptions Opts;
      Opts.CardEnc = Enc;
      Opts.Xor = NativeXor ? smt::XorMode::On : smt::XorMode::Off;
      Opts.SplitVars = Names; // protect every named var from elimination
      smt::VerificationProblem Problem(
          Ctx, Root, smt::makeProblemOptions(Ctx, Opts));
      ASSERT_FALSE(Problem.TriviallyUnsat);
      for (bool ForceGc : {false, true}) {
        Solver S = Problem.makeSolver();
        S.setGarbageFraction(ForceGc ? 0.0 : 1e9);
        size_t Models = 0;
        while (S.solve() == SolveResult::Sat) {
          ++Models;
          ASSERT_LE(Models, Expected) << "enc " << int(Enc) << " xor "
                                      << NativeXor << " gc " << ForceGc;
          std::vector<Lit> Block;
          for (const auto &[Name, V] : Problem.NamedVars)
            Block.push_back(S.modelValue(V) ? ~mkLit(V) : mkLit(V));
          if (!S.addClause(Block))
            break; // blocking clause empty at root: no models left
          if (ForceGc)
            S.forceGarbageCollect();
        }
        EXPECT_EQ(Models, Expected) << "enc " << int(Enc) << " xor "
                                    << NativeXor << " gc " << ForceGc;
        if (ForceGc) {
          // The final blocking clause can close the formula at the root,
          // skipping that round's collection.
          EXPECT_GE(S.stats().Compactions + 1, Models);
        }
      }
    }
  }
}

TEST(ProofRoundTrip, CertificateSurvivesRepeatedCompaction) {
  // Proof identities live inside clause memory now; this drives enough
  // reductions and compactions through an UNSAT run that any proof-id
  // word lost or scrambled by relocation produces a certificate the
  // checker rejects (dangling d-record, wrong a-record serial).
  size_t NumVars = 0;
  std::vector<std::vector<Lit>> Clauses = pigeonholeClauses(8, 7, NumVars);
  Solver S;
  proof::SlotProofLog Log;
  S.setProofSink(&Log);
  S.setMaxLearned(32);
  S.setGarbageFraction(0.0);
  for (size_t V = 0; V != NumVars; ++V)
    S.newVar();
  for (const auto &C : Clauses)
    ASSERT_TRUE(S.addClause(C));
  EXPECT_EQ(S.solve(), SolveResult::Unsat);
  ASSERT_GE(S.stats().Compactions, 3u)
      << "battery must exercise at least three relocation passes";
  Log.logConclusion({}, {});

  std::string Proof = "p veriqec proof 1\nv " + std::to_string(NumVars) + "\n";
  for (const auto &C : Clauses) {
    Proof += 'o';
    for (Lit L : C) {
      Proof += ' ';
      Proof += std::to_string(L.negated() ? -(L.var() + 1) : (L.var() + 1));
    }
    Proof += " 0\n";
  }
  Proof += "s 0\n";
  Proof += Log.drain();
  proof::CheckResult CR = proof::checkProof(Proof);
  EXPECT_TRUE(CR.Ok) << CR.Error;
  EXPECT_TRUE(CR.GlobalUnsat);
  EXPECT_GT(CR.Deletions, 0u);
}
