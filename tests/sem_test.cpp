//===- tests/sem_test.cpp - Semantics backends tests ----------------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//

#include "sem/DenseSubspace.h"
#include "sem/Interpreter.h"
#include "prog/Parser.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace veriqec;

namespace {

StmtPtr parse(const std::string &Src) {
  ParseResult R = parseProgram(Src);
  EXPECT_TRUE(std::holds_alternative<StmtPtr>(R));
  return Stmt::flatten(std::get<StmtPtr>(R));
}

} // namespace

TEST(DenseState, GateAlgebra) {
  DenseState S(1);
  S.applyGate(GateKind::H, 0);
  S.applyGate(GateKind::H, 0);
  EXPECT_NEAR(std::abs(S.amp(0) - std::complex<double>(1, 0)), 0, 1e-12);

  // S^2 = Z on |+>.
  DenseState P(1);
  P.applyGate(GateKind::H, 0);
  DenseState Q = P;
  Q.applyGate(GateKind::S, 0);
  Q.applyGate(GateKind::S, 0);
  DenseState ZP = P;
  ZP.applyPauli(Pauli::single(1, 0, PauliKind::Z));
  EXPECT_TRUE(Q.approxEqualUpToPhase(ZP));

  // T^2 = S.
  DenseState T2 = P;
  T2.applyGate(GateKind::T, 0);
  T2.applyGate(GateKind::T, 0);
  DenseState S1 = P;
  S1.applyGate(GateKind::S, 0);
  EXPECT_TRUE(T2.approxEqualUpToPhase(S1));
}

TEST(DenseState, PauliApplicationMatchesGates) {
  Rng R(4);
  for (GateKind G : {GateKind::X, GateKind::Y, GateKind::Z}) {
    DenseState A(2), B(2);
    for (size_t I = 0; I != 4; ++I) {
      auto Amp = std::complex<double>(R.nextDouble(), R.nextDouble());
      A.amp(I) = Amp;
      B.amp(I) = Amp;
    }
    A.applyGate(G, 1);
    PauliKind K = G == GateKind::X   ? PauliKind::X
                  : G == GateKind::Y ? PauliKind::Y
                                     : PauliKind::Z;
    B.applyPauli(Pauli::single(2, 1, K));
    EXPECT_TRUE(A.approxEqualUpToPhase(B));
  }
}

TEST(DenseState, ProjectorSplitsNorm) {
  DenseState S(1);
  S.applyGate(GateKind::H, 0); // |+>
  DenseState P0 = S, P1 = S;
  Pauli Z = Pauli::single(1, 0, PauliKind::Z);
  P0.projectPauli(Z, false);
  P1.projectPauli(Z, true);
  EXPECT_NEAR(P0.normSquared(), 0.5, 1e-12);
  EXPECT_NEAR(P1.normSquared(), 0.5, 1e-12);
}

TEST(DenseSubspace, LatticeLaws) {
  Pauli X0 = Pauli::single(2, 0, PauliKind::X);
  Pauli Z1 = Pauli::single(2, 1, PauliKind::Z);
  DenseSubspace A = DenseSubspace::eigenspaceOf(X0, false);
  DenseSubspace B = DenseSubspace::eigenspaceOf(Z1, false);
  EXPECT_EQ(A.dimension(), 2u);
  EXPECT_EQ(A.meet(B).dimension(), 1u);
  EXPECT_EQ(A.join(B).dimension(), 3u);
  EXPECT_TRUE(A.complement().complement().equals(A));
  // De Morgan: (A v B)^perp = A^perp ^ B^perp.
  EXPECT_TRUE(A.join(B).complement().equals(
      A.complement().meet(B.complement())));
  // Sasaki implication satisfies the Birkhoff-von Neumann requirement:
  // A ~> B = full iff A <= B.
  DenseSubspace AB = A.meet(B);
  EXPECT_EQ(AB.sasakiImplies(A).dimension(), 4u);
  EXPECT_LT(A.sasakiImplies(AB).dimension(), 4u);
}

TEST(Interpreter, DeterministicProgram) {
  DecoderRegistry Decoders;
  StmtPtr P = parse("q[0] *= H # q[0], q[1] *= CNOT # m := meas[Z[0] Z[1]]");
  auto Branches = runDense(P, {CMem{}, DenseState(2)}, Decoders);
  // Bell state: Z0Z1 outcome deterministically 0 -> one surviving branch.
  ASSERT_EQ(Branches.size(), 1u);
  EXPECT_EQ(Branches[0].Mem.at("m"), 0);
  EXPECT_NEAR(Branches[0].State.normSquared(), 1.0, 1e-12);
}

TEST(Interpreter, BranchingMeasurement) {
  DecoderRegistry Decoders;
  StmtPtr P = parse("q[0] *= H # m := meas[Z[0]] # "
                    "if m == 1 then q[0] *= X else skip end");
  auto Branches = runDense(P, {CMem{}, DenseState(1)}, Decoders);
  ASSERT_EQ(Branches.size(), 2u);
  // Both branches end in |0> with weight 1/2.
  for (const DenseBranch &B : Branches) {
    EXPECT_NEAR(B.State.normSquared(), 0.5, 1e-12);
    EXPECT_NEAR(std::norm(B.State.amp(1)), 0.0, 1e-12);
  }
}

TEST(Interpreter, GuardedGatesAndAssignments) {
  DecoderRegistry Decoders;
  StmtPtr P = parse("g := 1 # [g] q[0] *= X # m := meas[Z[0]]");
  auto Branches = runDense(P, {CMem{}, DenseState(1)}, Decoders);
  ASSERT_EQ(Branches.size(), 1u);
  EXPECT_EQ(Branches[0].Mem.at("m"), 1);
}

TEST(Interpreter, WhileLoopTerminates) {
  DecoderRegistry Decoders;
  StmtPtr P = parse("x := 3 # while 1 <= x do x := x + -1 end");
  auto Branches = runDense(P, {CMem{}, DenseState(1)}, Decoders);
  ASSERT_EQ(Branches.size(), 1u);
  EXPECT_EQ(Branches[0].Mem.at("x"), 0);
}

TEST(Interpreter, InitProducesMixedBranches) {
  DecoderRegistry Decoders;
  StmtPtr P = parse("q[0] *= H # q[0] := |0>");
  auto Branches = runDense(P, {CMem{}, DenseState(1)}, Decoders);
  // Two Kraus branches, both |0>, weights summing to 1.
  double Total = 0;
  for (const DenseBranch &B : Branches) {
    Total += B.State.normSquared();
    EXPECT_NEAR(std::norm(B.State.amp(1)), 0.0, 1e-12);
  }
  EXPECT_NEAR(Total, 1.0, 1e-12);
}

TEST(Interpreter, DecoderCallRoundTrip) {
  DecoderRegistry Decoders;
  Decoders.define("negate", [](const std::vector<int64_t> &In) {
    std::vector<int64_t> Out;
    for (int64_t V : In)
      Out.push_back(1 - V);
    return Out;
  });
  StmtPtr P = parse("a := 1 # x, y := negate(a, 0)");
  auto Branches = runDense(P, {CMem{}, DenseState(1)}, Decoders);
  EXPECT_EQ(Branches[0].Mem.at("x"), 0);
  EXPECT_EQ(Branches[0].Mem.at("y"), 1);
}

TEST(Interpreter, StabilizerTrajectoryHonoursStabilizerAlgebra) {
  // Bell pair is stabilized by X0X1; measuring X0 (random outcome m)
  // leaves X0X1 = +1 intact, and the guarded Z1 flips it exactly when
  // m = 1 — so the final X0X1 measurement must read back m.
  DecoderRegistry Decoders;
  StmtPtr P = parse("q[0] *= H # q[0], q[1] *= CNOT # m := meas[X[0]] # "
                    "[m] q[1] *= Z # r := meas[X[0] X[1]]");
  Rng R(5);
  bool SawBothOutcomes[2] = {false, false};
  for (int Trial = 0; Trial != 20; ++Trial) {
    StabilizerRun Run = runStabilizer(P, 2, CMem{}, Decoders, R);
    EXPECT_EQ(Run.Mem.at("r"), Run.Mem.at("m"));
    SawBothOutcomes[Run.Mem.at("m")] = true;
  }
  EXPECT_TRUE(SawBothOutcomes[0] && SawBothOutcomes[1]);
}

TEST(SamplingSmoke, TableauCodeRoundsAreFast) {
  // Smoke-level throughput guard for the sampling substrate.
  Rng R(6);
  Tableau T(50);
  for (int I = 0; I != 200; ++I) {
    size_t Q = R.nextBelow(49);
    T.applyGate(GateKind::CNOT, Q, Q + 1);
    T.applyGate(GateKind::H, R.nextBelow(50));
  }
  SUCCEED();
}
