//===- tests/smt_test.cpp - Formula layer and encoder tests ---------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cross-validates the Tseitin/cardinality CNF encoding against the
/// expression evaluator: for random formulas over few variables, solving
/// under assumptions that pin every variable must agree with evaluate()
/// on every assignment.
///
//===----------------------------------------------------------------------===//

#include "smt/BoolExpr.h"
#include "smt/CnfEncoder.h"
#include "smt/CubeSolver.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace veriqec;
using namespace veriqec::smt;
using sat::SolveResult;

namespace {

/// Checks that the CNF encoding of Root agrees with evaluate() on every
/// assignment of the context's variables (requires few variables).
void checkEncodingExhaustively(const BoolContext &Ctx, ExprRef Root,
                               CardinalityEncoding Enc =
                                   CardinalityEncoding::SequentialCounter) {
  size_t NumVars = Ctx.numVariables();
  ASSERT_LE(NumVars, 14u);

  CnfFormula Cnf;
  CnfEncoder Encoder(Ctx, Cnf, Enc);
  std::vector<sat::Var> SatVars;
  for (uint32_t Id = 0; Id != NumVars; ++Id)
    SatVars.push_back(Encoder.satVarOf(Id));
  Encoder.assertTrue(Root);

  sat::Solver S;
  for (size_t I = 0; I != Cnf.NumVars; ++I)
    S.newVar();
  for (const auto &C : Cnf.Clauses)
    S.addClause(C);

  for (uint64_t Mask = 0; Mask != (uint64_t{1} << NumVars); ++Mask) {
    std::vector<bool> Assignment(NumVars);
    std::vector<sat::Lit> Assumptions;
    for (size_t V = 0; V != NumVars; ++V) {
      Assignment[V] = (Mask >> V) & 1;
      Assumptions.push_back(sat::Lit(SatVars[V], !Assignment[V]));
    }
    bool Expected = Ctx.evaluate(Root, Assignment);
    SolveResult Got = S.solve(Assumptions);
    ASSERT_EQ(Got == SolveResult::Sat, Expected)
        << "assignment mask " << Mask << " of " << Ctx.toString(Root);
  }
}

} // namespace

TEST(BoolContext, ConstantFolding) {
  BoolContext Ctx;
  ExprRef A = Ctx.mkVar("a");
  EXPECT_EQ(Ctx.mkAnd(A, Ctx.mkTrue()), A);
  EXPECT_EQ(Ctx.mkAnd(A, Ctx.mkFalse()), Ctx.mkFalse());
  EXPECT_EQ(Ctx.mkOr(A, Ctx.mkTrue()), Ctx.mkTrue());
  EXPECT_EQ(Ctx.mkOr(A, Ctx.mkFalse()), A);
  EXPECT_EQ(Ctx.mkNot(Ctx.mkNot(A)), A);
  EXPECT_EQ(Ctx.mkXor(A, A), Ctx.mkFalse());
  EXPECT_EQ(Ctx.mkXor(A, Ctx.mkFalse()), A);
  EXPECT_EQ(Ctx.mkAnd(A, Ctx.mkNot(A)), Ctx.mkFalse());
  EXPECT_EQ(Ctx.mkOr(A, Ctx.mkNot(A)), Ctx.mkTrue());
}

TEST(BoolContext, HashConsingDeduplicates) {
  BoolContext Ctx;
  ExprRef A = Ctx.mkVar("a"), B = Ctx.mkVar("b");
  EXPECT_EQ(Ctx.mkAnd(A, B), Ctx.mkAnd(B, A));
  EXPECT_EQ(Ctx.mkVar("a"), A);
  size_t Before = Ctx.numNodes();
  Ctx.mkAnd(A, B);
  EXPECT_EQ(Ctx.numNodes(), Before);
}

TEST(BoolContext, EvaluateCardinality) {
  BoolContext Ctx;
  std::vector<ExprRef> Vars;
  for (int I = 0; I != 5; ++I)
    Vars.push_back(Ctx.mkVar("v" + std::to_string(I)));
  ExprRef AtMost2 = Ctx.mkAtMost(Vars, 2);
  ExprRef AtLeast3 = Ctx.mkAtLeast(Vars, 3);
  for (uint64_t Mask = 0; Mask != 32; ++Mask) {
    std::vector<bool> A(5);
    int Count = 0;
    for (int I = 0; I != 5; ++I) {
      A[I] = (Mask >> I) & 1;
      Count += A[I];
    }
    EXPECT_EQ(Ctx.evaluate(AtMost2, A), Count <= 2);
    EXPECT_EQ(Ctx.evaluate(AtLeast3, A), Count >= 3);
  }
}

TEST(CnfEncoder, BasicConnectives) {
  BoolContext Ctx;
  ExprRef A = Ctx.mkVar("a"), B = Ctx.mkVar("b"), C = Ctx.mkVar("c");
  checkEncodingExhaustively(Ctx, Ctx.mkOr(Ctx.mkAnd(A, B), Ctx.mkNot(C)));
}

TEST(CnfEncoder, XorChain) {
  BoolContext Ctx;
  std::vector<ExprRef> Vars;
  for (int I = 0; I != 6; ++I)
    Vars.push_back(Ctx.mkVar("x" + std::to_string(I)));
  checkEncodingExhaustively(Ctx, Ctx.mkXor(Vars));
}

TEST(CnfEncoder, ImpliesAndIff) {
  BoolContext Ctx;
  ExprRef A = Ctx.mkVar("a"), B = Ctx.mkVar("b");
  checkEncodingExhaustively(Ctx, Ctx.mkImplies(A, B));
  BoolContext Ctx2;
  ExprRef C = Ctx2.mkVar("c"), D = Ctx2.mkVar("d");
  checkEncodingExhaustively(Ctx2, Ctx2.mkIff(C, D));
}

class CardinalityEncodingTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CardinalityEncodingTest, AtMostMatchesSemantics) {
  auto [N, K] = GetParam();
  BoolContext Ctx;
  std::vector<ExprRef> Vars;
  for (int I = 0; I != N; ++I)
    Vars.push_back(Ctx.mkVar("v" + std::to_string(I)));
  checkEncodingExhaustively(Ctx, Ctx.mkAtMost(Vars, K));
}

TEST_P(CardinalityEncodingTest, AtLeastMatchesSemantics) {
  auto [N, K] = GetParam();
  BoolContext Ctx;
  std::vector<ExprRef> Vars;
  for (int I = 0; I != N; ++I)
    Vars.push_back(Ctx.mkVar("v" + std::to_string(I)));
  checkEncodingExhaustively(Ctx, Ctx.mkAtLeast(Vars, K));
}

TEST_P(CardinalityEncodingTest, PairwiseNaiveAgrees) {
  auto [N, K] = GetParam();
  if (K > 3)
    return; // exponential encoding; keep it small
  BoolContext Ctx;
  std::vector<ExprRef> Vars;
  for (int I = 0; I != N; ++I)
    Vars.push_back(Ctx.mkVar("v" + std::to_string(I)));
  checkEncodingExhaustively(Ctx, Ctx.mkAtMost(Vars, K),
                            CardinalityEncoding::PairwiseNaive);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CardinalityEncodingTest,
                         ::testing::Values(std::tuple{4, 0}, std::tuple{4, 1},
                                           std::tuple{5, 2}, std::tuple{6, 3},
                                           std::tuple{7, 4}, std::tuple{7, 6},
                                           std::tuple{8, 5}));

TEST(CnfEncoder, SumLeqSumExhaustive) {
  BoolContext Ctx;
  std::vector<ExprRef> A, B;
  for (int I = 0; I != 4; ++I)
    A.push_back(Ctx.mkVar("a" + std::to_string(I)));
  for (int I = 0; I != 3; ++I)
    B.push_back(Ctx.mkVar("b" + std::to_string(I)));
  checkEncodingExhaustively(Ctx, Ctx.mkSumLeqSum(A, B));
}

TEST(CnfEncoder, RandomFormulasAgreeWithEvaluator) {
  Rng R(7);
  for (int Trial = 0; Trial != 40; ++Trial) {
    BoolContext Ctx;
    std::vector<ExprRef> Pool;
    for (int I = 0; I != 6; ++I)
      Pool.push_back(Ctx.mkVar("v" + std::to_string(I)));
    // Grow random expressions over the pool.
    for (int Step = 0; Step != 12; ++Step) {
      ExprRef A = Pool[R.nextBelow(Pool.size())];
      ExprRef B = Pool[R.nextBelow(Pool.size())];
      switch (R.nextBelow(5)) {
      case 0:
        Pool.push_back(Ctx.mkAnd(A, B));
        break;
      case 1:
        Pool.push_back(Ctx.mkOr(A, B));
        break;
      case 2:
        Pool.push_back(Ctx.mkXor(A, B));
        break;
      case 3:
        Pool.push_back(Ctx.mkNot(A));
        break;
      case 4:
        Pool.push_back(
            Ctx.mkAtMost({A, B, Pool[R.nextBelow(Pool.size())]},
                         static_cast<uint32_t>(R.nextBelow(3))));
        break;
      }
    }
    checkEncodingExhaustively(Ctx, Pool.back());
  }
}

TEST(CubeSolver, SequentialSatProducesValidModel) {
  BoolContext Ctx;
  ExprRef A = Ctx.mkVar("a"), B = Ctx.mkVar("b"), C = Ctx.mkVar("c");
  ExprRef Root = Ctx.mkAnd({Ctx.mkOr(A, B), Ctx.mkNot(C), Ctx.mkXor(A, B)});
  SolveOutcome Out = solveExpr(Ctx, Root);
  ASSERT_EQ(Out.Result, SolveResult::Sat);
  std::vector<bool> Assignment = {Out.Model.at("a"), Out.Model.at("b"),
                                  Out.Model.at("c")};
  EXPECT_TRUE(Ctx.evaluate(Root, Assignment));
}

TEST(CubeSolver, ParallelUnsatAgreesWithSequential) {
  // Parity contradiction over 8 variables: x0^...^x7 = 0 and = 1.
  BoolContext Ctx;
  std::vector<ExprRef> Vars;
  std::vector<std::string> Names;
  for (int I = 0; I != 8; ++I) {
    Names.push_back("e" + std::to_string(I));
    Vars.push_back(Ctx.mkVar(Names.back()));
  }
  ExprRef Root = Ctx.mkAnd(Ctx.mkXor(Vars), Ctx.mkNot(Ctx.mkXor(Vars)));
  // Root folds to false structurally; build a harder version instead.
  ExprRef P1 = Ctx.mkXor({Vars[0], Vars[1], Vars[2], Vars[3]});
  ExprRef P2 = Ctx.mkXor({Vars[2], Vars[3], Vars[4], Vars[5]});
  ExprRef P3 = Ctx.mkXor({Vars[4], Vars[5], Vars[6], Vars[7]});
  ExprRef P4 = Ctx.mkXor({Vars[0], Vars[1], Vars[6], Vars[7]});
  // P1^P2^P3^P4 = 0 always, so requiring odd many of them true is UNSAT.
  Root = Ctx.mkAnd({P1, P2, P3, Ctx.mkNot(P4)});

  SolveOptions Opts;
  Opts.NumThreads = 4;
  Opts.SplitVars = Names;
  Opts.DistanceHint = 2;
  Opts.SplitThreshold = 6;
  SolveOutcome Par = solveExprParallel(Ctx, Root, Opts);
  SolveOutcome Seq = solveExpr(Ctx, Root);
  EXPECT_EQ(Seq.Result, SolveResult::Unsat);
  EXPECT_EQ(Par.Result, SolveResult::Unsat);
  // A pure parity contradiction never reaches a solver: Gaussian
  // elimination refutes it during preprocessing, before cube enumeration.
  EXPECT_TRUE(Par.Prep.TriviallyUnsat);
  EXPECT_EQ(Par.NumCubes, 0u);
  EXPECT_EQ(Par.Stats.Conflicts, 0u);

  // With preprocessing off, the legacy pipeline must still agree — the
  // hard way, through the cube enumeration.
  Opts.Preprocess = false;
  SolveOutcome Legacy = solveExprParallel(Ctx, Root, Opts);
  EXPECT_EQ(Legacy.Result, SolveResult::Unsat);
  EXPECT_GT(Legacy.NumCubes, 1u);
}

TEST(CubeSolver, ParallelSatFindsModel) {
  BoolContext Ctx;
  std::vector<ExprRef> Vars;
  std::vector<std::string> Names;
  for (int I = 0; I != 10; ++I) {
    Names.push_back("e" + std::to_string(I));
    Vars.push_back(Ctx.mkVar(Names.back()));
  }
  // Exactly 3 of 10 set, and v0 ^ v9 = 1.
  ExprRef Root = Ctx.mkAnd({Ctx.mkAtMost(Vars, 3), Ctx.mkAtLeast(Vars, 3),
                            Ctx.mkXor(Vars[0], Vars[9])});
  SolveOptions Opts;
  Opts.NumThreads = 4;
  Opts.SplitVars = Names;
  Opts.DistanceHint = 2;
  Opts.SplitThreshold = 8;
  SolveOutcome Out = solveExprParallel(Ctx, Root, Opts);
  ASSERT_EQ(Out.Result, SolveResult::Sat);
  std::vector<bool> Assignment;
  for (int I = 0; I != 10; ++I)
    Assignment.push_back(Out.Model.at(Names[I]));
  EXPECT_TRUE(Ctx.evaluate(Root, Assignment));
}

TEST(CubeSolver, MaxOnesPruningStaysSound) {
  BoolContext Ctx;
  std::vector<ExprRef> Vars;
  std::vector<std::string> Names;
  for (int I = 0; I != 6; ++I) {
    Names.push_back("e" + std::to_string(I));
    Vars.push_back(Ctx.mkVar(Names.back()));
  }
  // Satisfiable only with exactly one bit set.
  ExprRef Root = Ctx.mkAnd(Ctx.mkAtMost(Vars, 1), Ctx.mkAtLeast(Vars, 1));
  SolveOptions Opts;
  Opts.NumThreads = 2;
  Opts.SplitVars = Names;
  Opts.DistanceHint = 3;
  Opts.SplitThreshold = 10;
  Opts.MaxOnes = 1;
  SolveOutcome Out = solveExprParallel(Ctx, Root, Opts);
  EXPECT_EQ(Out.Result, SolveResult::Sat);
}
