//===- tests/soundness_test.cpp - Proof-system soundness harness ----------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bounded-instance substitute for the paper's Coq development
/// (Theorem 4.3 / Theorem A.11): for randomly generated programs and
/// postconditions, the backward wlp of Fig. 3 is checked against the
/// dense denotational semantics in BOTH directions —
///   soundness:  every state satisfying wlp(S, B) ends, on every branch,
///               inside J B K;
///   weakestness: every state orthogonal to wlp(S, B) violates B on some
///               branch.
/// Plus dense cross-validation of the full Steane pipeline with concrete
/// decoders, including non-Clifford T errors (the case-3 machinery).
///
//===----------------------------------------------------------------------===//

#include "decoder/Decoder.h"
#include "logic/Wlp.h"
#include "qec/Codes.h"
#include "support/Rng.h"
#include "verifier/Scenarios.h"

#include <gtest/gtest.h>

using namespace veriqec;

namespace {

CExprPtr num(int64_t V) { return ClassicalExpr::constant(V); }
CExprPtr cvar(const std::string &N) { return ClassicalExpr::var(N); }

ProgPauli progPauli(PauliKind K, size_t Q) {
  ProgPauli P;
  P.Factors.push_back({K, num(static_cast<int64_t>(Q))});
  return P;
}

/// Random Clifford program over \p N qubits using measurement variables
/// m0.., guard variables g0/g1 (free in the initial memory).
StmtPtr randomProgram(size_t N, Rng &R, int Len) {
  std::vector<StmtPtr> Stmts;
  int NextMeas = 0;
  for (int I = 0; I != Len; ++I) {
    switch (R.nextBelow(6)) {
    case 0: {
      GateKind G = std::array{GateKind::H, GateKind::S, GateKind::X,
                              GateKind::Z}[R.nextBelow(4)];
      Stmts.push_back(Stmt::unitary1(G, num(R.nextBelow(N))));
      break;
    }
    case 1: {
      if (N < 2)
        break;
      size_t A = R.nextBelow(N), B = R.nextBelow(N);
      if (A == B)
        break;
      GateKind G = R.nextBool() ? GateKind::CNOT : GateKind::CZ;
      Stmts.push_back(Stmt::unitary2(G, num(A), num(B)));
      break;
    }
    case 2: {
      PauliKind K = std::array{PauliKind::X, PauliKind::Y,
                               PauliKind::Z}[R.nextBelow(3)];
      Stmts.push_back(
          Stmt::measure("m" + std::to_string(NextMeas++),
                        progPauli(K, R.nextBelow(N))));
      break;
    }
    case 3: {
      GateKind G =
          std::array{GateKind::X, GateKind::Y, GateKind::Z}[R.nextBelow(3)];
      std::string Guard = R.nextBool() ? "g0" : "g1";
      Stmts.push_back(Stmt::guardedGate(cvar(Guard), G, num(R.nextBelow(N))));
      break;
    }
    case 4: {
      if (NextMeas == 0)
        break;
      std::string Var = "m" + std::to_string(R.nextBelow(NextMeas));
      StmtPtr Then = Stmt::unitary1(GateKind::X, num(R.nextBelow(N)));
      StmtPtr Else = Stmt::skip();
      Stmts.push_back(Stmt::ifElse(cvar(Var), Then, Else));
      break;
    }
    case 5:
      Stmts.push_back(Stmt::init(num(R.nextBelow(N))));
      break;
    }
  }
  if (Stmts.empty())
    Stmts.push_back(Stmt::skip());
  return Stmt::seq(std::move(Stmts));
}

Pauli randomPauli(size_t N, Rng &R) {
  Pauli P(N);
  for (size_t Q = 0; Q != N; ++Q)
    P.setKind(Q, static_cast<PauliKind>(R.nextBelow(4)));
  return P.abs(); // Hermitian representative (+ sign)
}

/// Random postcondition: conjunction/disjunction tree over Pauli atoms
/// (phases possibly referencing measurement variables) and bool atoms.
AssertPtr randomPost(size_t N, Rng &R, int NumMeas) {
  auto atom = [&]() -> AssertPtr {
    if (R.nextBelow(5) == 0)
      return Assertion::boolAtom(
          NumMeas > 0 && R.nextBool()
              ? cvar("m" + std::to_string(R.nextBelow(NumMeas)))
              : ClassicalExpr::boolean(true));
    Pauli P = randomPauli(N, R);
    if (P.isIdentityUpToPhase())
      P = Pauli::single(N, 0, PauliKind::Z);
    CExprPtr Phase;
    if (NumMeas > 0 && R.nextBool())
      Phase = cvar("m" + std::to_string(R.nextBelow(NumMeas)));
    return Assertion::pauliAtom(P, Phase);
  };
  AssertPtr A = atom();
  int Extra = 1 + static_cast<int>(R.nextBelow(2));
  for (int I = 0; I != Extra; ++I)
    A = R.nextBool() ? Assertion::conj(A, atom()) : Assertion::disj(A, atom());
  return A;
}

/// Counts measurement statements to bound the m-variables.
int countMeasurements(const StmtPtr &S) {
  if (S->Kind == StmtKind::Measure)
    return 1;
  int Total = 0;
  for (const StmtPtr &Kid : S->Body)
    Total += countMeasurements(Kid);
  return Total;
}

} // namespace

TEST(ProofSystem, WlpSoundAndWeakestOnRandomPrograms) {
  Rng R(2025);
  const size_t N = 2;
  DecoderRegistry NoDecoders;
  int Checked = 0;

  for (int Trial = 0; Trial != 60; ++Trial) {
    StmtPtr Prog = randomProgram(N, R, 1 + Trial % 5);
    int NumMeas = countMeasurements(Prog);
    AssertPtr Post = randomPost(N, R, NumMeas);
    WlpResult W = wlp(Prog, Post, N);
    ASSERT_TRUE(W.ok()) << W.Error;

    // Check all four guard assignments.
    for (int GuardMask = 0; GuardMask != 4; ++GuardMask) {
      CMem Mem;
      Mem["g0"] = GuardMask & 1;
      Mem["g1"] = (GuardMask >> 1) & 1;

      DenseSubspace PreSpace = W.Pre->evaluate(Mem, N);

      // Soundness: basis states of J wlp K land in J Post K.
      for (size_t BI = 0; BI != PreSpace.dimension(); ++BI) {
        // Recover an orthonormal basis via projection of standard kets.
        DenseState Ket(N);
        Ket.amp(0) = 0;
        Ket.amp(BI % Ket.dim()) = 1;
        DenseState InPre = PreSpace.project(Ket);
        if (InPre.isZero(1e-10))
          continue;
        std::vector<DenseBranch> Branches =
            runDense(Prog, {Mem, InPre}, NoDecoders);
        EXPECT_TRUE(satisfies(Branches, Post, N))
            << "soundness violated: trial " << Trial << " guards "
            << GuardMask << "\nprogram:\n"
            << Prog->toString() << "\npost: " << Post->toString()
            << "\nwlp: " << W.Pre->toString();
        ++Checked;
      }

      // Weakestness: states orthogonal to wlp must violate Post.
      DenseSubspace Complement = PreSpace.complement();
      for (size_t BI = 0; BI != (size_t{1} << N); ++BI) {
        DenseState Ket(N);
        Ket.amp(0) = 0;
        Ket.amp(BI) = 1;
        DenseState Out = Complement.project(Ket);
        if (Out.isZero(1e-10))
          continue;
        std::vector<DenseBranch> Branches =
            runDense(Prog, {Mem, Out}, NoDecoders);
        EXPECT_FALSE(satisfies(Branches, Post, N))
            << "weakestness violated: trial " << Trial << " guards "
            << GuardMask << "\nprogram:\n"
            << Prog->toString() << "\npost: " << Post->toString();
        break; // one witness per memory suffices
      }
    }
  }
  EXPECT_GT(Checked, 100);
}

TEST(ProofSystem, Example33QuantumDisjunctionPrecondition) {
  // Example 3.3: S = b := meas[Z_2]; if b then q2 *= X else skip end.
  // {X_1} S {X_1 /\ Z_2} holds, and the quantum-logic wlp equals J X_1 K
  // on the quantum side (span, not union).
  const size_t N = 2;
  StmtPtr Prog = Stmt::seq(
      {Stmt::measure("b", progPauli(PauliKind::Z, 1)),
       Stmt::ifElse(cvar("b"), Stmt::unitary1(GateKind::X, num(1)),
                    Stmt::skip())});
  AssertPtr Post =
      Assertion::conj(Assertion::pauliAtom(Pauli::single(N, 0, PauliKind::X)),
                      Assertion::pauliAtom(Pauli::single(N, 1, PauliKind::Z)));
  WlpResult W = wlp(Prog, Post, N);
  ASSERT_TRUE(W.ok());
  CMem Mem;
  DenseSubspace Pre = W.Pre->evaluate(Mem, N);
  DenseSubspace X1 =
      DenseSubspace::eigenspaceOf(Pauli::single(N, 0, PauliKind::X), false);
  EXPECT_TRUE(Pre.equals(X1))
      << "quantum-logic join must recover the full X_1 eigenspace";
}

TEST(ProofSystem, PropositionA3Laws) {
  // i) P /\ Q == P /\ QP; ii) P /\ -P == false (on dense semantics).
  Rng R(9);
  const size_t N = 3;
  for (int Trial = 0; Trial != 20; ++Trial) {
    Pauli P = randomPauli(N, R), Q = randomPauli(N, R);
    if (P.isIdentityUpToPhase() || Q.isIdentityUpToPhase())
      continue;
    DenseSubspace SP = DenseSubspace::eigenspaceOf(P, false);
    DenseSubspace SQ = DenseSubspace::eigenspaceOf(Q, false);
    Pauli QP = Q * P;
    if (!QP.isHermitian())
      continue;
    bool Sign = QP.signBit();
    DenseSubspace SQP = DenseSubspace::eigenspaceOf(QP.abs(), Sign);
    EXPECT_TRUE(SP.meet(SQ).equals(SP.meet(SQP)));

    Pauli MinusP = P;
    MinusP.negate();
    DenseSubspace SMinusP = DenseSubspace::eigenspaceOf(P, true);
    EXPECT_EQ(SP.meet(SMinusP).dimension(), 0u);
    (void)SMinusP;
    (void)MinusP;
  }
}

namespace {

/// Registers concrete lookup decoders (decode_x<tag>/decode_z<tag>) for a
/// code; syndrome order matches the scenario builders.
void registerLookupDecoders(DecoderRegistry &Registry,
                            const StabilizerCode &Code,
                            const std::string &Tag, size_t MaxWeight) {
  auto Lookup = std::make_shared<LookupDecoder>(Code, MaxWeight);
  size_t N = Code.NumQubits;
  auto decode = [Lookup, N, &Code](const std::vector<int64_t> &Syndromes,
                                   bool WantX) {
    BitVector Syn(Code.Generators.size());
    for (size_t I = 0; I != Syndromes.size(); ++I)
      if (Syndromes[I])
        Syn.set(I);
    std::vector<int64_t> Out(N, 0);
    if (auto Corr = Lookup->decode(Syn)) {
      for (size_t Q = 0; Q != N; ++Q) {
        PauliKind K = Corr->kindAt(Q);
        bool X = K == PauliKind::X || K == PauliKind::Y;
        bool Z = K == PauliKind::Z || K == PauliKind::Y;
        Out[Q] = WantX ? X : Z;
      }
    }
    return Out;
  };
  Registry.define("decode_x" + Tag,
                  [decode](const std::vector<int64_t> &S) {
                    return decode(S, true);
                  });
  Registry.define("decode_z" + Tag,
                  [decode](const std::vector<int64_t> &S) {
                    return decode(S, false);
                  });
}

/// Prepares the logical |0>_L (or |+>_L) of a small code densely by
/// projecting onto every generator's +1 eigenspace from |0...0> (or
/// |+...+>).
DenseState prepareLogicalState(const StabilizerCode &Code, bool Plus) {
  DenseState State(Code.NumQubits);
  if (Plus)
    for (size_t Q = 0; Q != Code.NumQubits; ++Q)
      State.applyGate(GateKind::H, Q);
  for (const Pauli &G : Code.Generators)
    State.projectPauli(G, false);
  EXPECT_GT(State.normSquared(), 1e-9);
  State.normalize();
  return State;
}

} // namespace

TEST(DenseCrossValidation, SteaneMemoryCorrectsEverySingleError) {
  StabilizerCode Code = makeSteaneCode();
  Scenario S = makeMemoryScenario(Code, PauliKind::Y, LogicalBasis::Z, 1);
  DecoderRegistry Registry;
  registerLookupDecoders(Registry, Code, "", 1);

  DenseState Zero = prepareLogicalState(Code, false);
  for (size_t Loc = 0; Loc != 8; ++Loc) {
    CMem Mem;
    for (size_t Q = 0; Q != 7; ++Q)
      Mem["e" + std::to_string(Q)] = (Loc < 7 && Q == Loc) ? 1 : 0;
    std::vector<DenseBranch> Branches =
        runDense(S.Program, {Mem, Zero}, Registry);
    for (const DenseBranch &B : Branches) {
      if (B.State.isZero())
        continue;
      // The final state must again be the logical |0>_L.
      DenseState Expect = Zero;
      EXPECT_TRUE(B.State.approxEqualUpToPhase(
          Expect, 1e-6 * std::sqrt(B.State.normSquared() /
                                   Expect.normSquared())))
          << "error location " << Loc;
      // Weaker but robust check: stabilized by all generators + logical Z.
      DenseState Proj = B.State;
      for (const Pauli &G : Code.Generators)
        Proj.projectPauli(G, false);
      Proj.projectPauli(Code.LogicalZ[0], false);
      EXPECT_NEAR(Proj.normSquared(), B.State.normSquared(),
                  1e-6 * B.State.normSquared())
          << "error location " << Loc;
    }
  }
}

TEST(DenseCrossValidation, SteaneTErrorMatchesVerifierClaim) {
  // The verifier proves (tests/verifier_test.cpp) that one T error at any
  // location before the logical H is corrected; replay densely with the
  // concrete minimum-weight decoder, on both measurement branches.
  StabilizerCode Code = makeSteaneCode();
  DecoderRegistry Registry;
  registerLookupDecoders(Registry, Code, "", 1);

  for (size_t Loc = 0; Loc != 7; ++Loc) {
    Scenario S =
        makeNonPauliErrorScenario(Code, GateKind::T, Loc, LogicalBasis::X);
    DenseState Plus = prepareLogicalState(Code, true); // |+>_L
    std::vector<DenseBranch> Branches =
        runDense(S.Program, {CMem{}, Plus}, Registry);
    ASSERT_FALSE(Branches.empty());
    double TotalWeight = 0;
    for (const DenseBranch &B : Branches) {
      if (B.State.isZero())
        continue;
      TotalWeight += B.State.normSquared();
      // Post: logical |0>_L family — stabilized by generators and Z_L.
      DenseState Proj = B.State;
      for (const Pauli &G : Code.Generators)
        Proj.projectPauli(G, false);
      Proj.projectPauli(Code.LogicalZ[0], false);
      EXPECT_NEAR(Proj.normSquared(), B.State.normSquared(),
                  1e-6 * std::max(1.0, B.State.normSquared()))
          << "T at " << Loc;
    }
    EXPECT_NEAR(TotalWeight, 1.0, 1e-6) << "branches must sum to unity";
  }
}

TEST(DenseCrossValidation, SteaneHErrorMatchesVerifierClaim) {
  StabilizerCode Code = makeSteaneCode();
  DecoderRegistry Registry;
  registerLookupDecoders(Registry, Code, "", 1);
  for (size_t Loc = 0; Loc != 7; ++Loc) {
    Scenario S =
        makeNonPauliErrorScenario(Code, GateKind::H, Loc, LogicalBasis::X);
    DenseState Plus = prepareLogicalState(Code, true);
    std::vector<DenseBranch> Branches =
        runDense(S.Program, {CMem{}, Plus}, Registry);
    for (const DenseBranch &B : Branches) {
      if (B.State.isZero())
        continue;
      DenseState Proj = B.State;
      for (const Pauli &G : Code.Generators)
        Proj.projectPauli(G, false);
      Proj.projectPauli(Code.LogicalZ[0], false);
      EXPECT_NEAR(Proj.normSquared(), B.State.normSquared(),
                  1e-6 * std::max(1.0, B.State.normSquared()))
          << "H at " << Loc;
    }
  }
}
