//===- tests/support_test.cpp - BitVector / Rng / Timer / Json unit tests -===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//

#include "support/BitVector.h"
#include "support/Json.h"
#include "support/Rng.h"
#include "support/Timer.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <limits>
#include <set>

using namespace veriqec;

TEST(BitVector, DefaultIsEmpty) {
  BitVector V;
  EXPECT_EQ(V.size(), 0u);
  EXPECT_TRUE(V.empty());
  EXPECT_TRUE(V.none());
}

TEST(BitVector, SetGetFlip) {
  BitVector V(130);
  EXPECT_EQ(V.size(), 130u);
  V.set(0);
  V.set(64);
  V.set(129);
  EXPECT_TRUE(V.get(0));
  EXPECT_TRUE(V.get(64));
  EXPECT_TRUE(V.get(129));
  EXPECT_FALSE(V.get(1));
  EXPECT_EQ(V.count(), 3u);
  V.flip(64);
  EXPECT_FALSE(V.get(64));
  V.set(0, false);
  EXPECT_FALSE(V.get(0));
  EXPECT_EQ(V.count(), 1u);
}

TEST(BitVector, AllOnesConstructorMasksTail) {
  BitVector V(70, true);
  EXPECT_EQ(V.count(), 70u);
  for (size_t I = 0; I != 70; ++I)
    EXPECT_TRUE(V.get(I));
}

TEST(BitVector, FindFirstNext) {
  BitVector V(200);
  EXPECT_EQ(V.findFirst(), 200u);
  V.set(3);
  V.set(77);
  V.set(199);
  EXPECT_EQ(V.findFirst(), 3u);
  EXPECT_EQ(V.findNext(4), 77u);
  EXPECT_EQ(V.findNext(78), 199u);
  EXPECT_EQ(V.findNext(200), 200u);

  std::set<size_t> Seen;
  for (size_t I = V.findFirst(); I < V.size(); I = V.findNext(I + 1))
    Seen.insert(I);
  EXPECT_EQ(Seen, (std::set<size_t>{3, 77, 199}));
}

TEST(BitVector, XorAndOr) {
  BitVector A(100), B(100);
  A.set(1);
  A.set(50);
  B.set(50);
  B.set(99);
  BitVector X = A ^ B;
  EXPECT_TRUE(X.get(1));
  EXPECT_FALSE(X.get(50));
  EXPECT_TRUE(X.get(99));
  BitVector N = A & B;
  EXPECT_EQ(N.count(), 1u);
  EXPECT_TRUE(N.get(50));
  BitVector O = A | B;
  EXPECT_EQ(O.count(), 3u);
}

TEST(BitVector, DotParityMatchesAndCount) {
  Rng R(42);
  for (int Trial = 0; Trial != 50; ++Trial) {
    BitVector A(97), B(97);
    for (size_t I = 0; I != 97; ++I) {
      if (R.nextBool())
        A.set(I);
      if (R.nextBool())
        B.set(I);
    }
    EXPECT_EQ(A.dotParity(B), (A.andCount(B) & 1) == 1);
  }
}

TEST(BitVector, ResizePreservesAndZeroExtends) {
  BitVector V(10);
  V.set(9);
  V.resize(100);
  EXPECT_TRUE(V.get(9));
  EXPECT_EQ(V.count(), 1u);
  V.resize(5);
  EXPECT_EQ(V.count(), 0u);
  // Growing after shrinking must not resurrect stale bits.
  V.resize(10);
  EXPECT_FALSE(V.get(9));
}

TEST(BitVector, ToStringAndEquality) {
  BitVector V(4);
  V.set(1);
  V.set(3);
  EXPECT_EQ(V.toString(), "0101");
  BitVector W(4);
  W.set(1);
  EXPECT_NE(V, W);
  W.set(3);
  EXPECT_EQ(V, W);
  EXPECT_EQ(V.hash(), W.hash());
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng A(7), B(7);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, BoundsRespected) {
  Rng R(3);
  for (int I = 0; I != 1000; ++I) {
    EXPECT_LT(R.nextBelow(17), 17u);
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(Rng, RoughlyFairCoin) {
  Rng R(11);
  int Heads = 0;
  for (int I = 0; I != 10000; ++I)
    Heads += R.nextBool();
  EXPECT_GT(Heads, 4500);
  EXPECT_LT(Heads, 5500);
}

TEST(Timer, MonotonicNonNegative) {
  Timer T;
  double A = T.seconds();
  double B = T.seconds();
  EXPECT_GE(A, 0.0);
  EXPECT_GE(B, A);
}

namespace {

/// A controllable clock that can jump backwards — the NTP-adjustment
/// hazard the steady_clock pin in support/Timer.h exists to rule out.
struct SkewClock {
  using duration = std::chrono::nanoseconds;
  using rep = duration::rep;
  using period = duration::period;
  using time_point = std::chrono::time_point<SkewClock>;
  static constexpr bool is_steady = false;
  static inline time_point Current{};
  static time_point now() { return Current; }
};

} // namespace

TEST(Timer, ClampsNegativeElapsedUnderClockSkew) {
  SkewClock::Current = SkewClock::time_point(std::chrono::seconds(100));
  BasicTimer<SkewClock> T;
  // The clock jumps backwards mid-measurement: elapsed time must clamp
  // to zero, never go negative.
  SkewClock::Current -= std::chrono::seconds(30);
  EXPECT_EQ(T.seconds(), 0.0);
  EXPECT_EQ(T.millis(), 0.0);
  // Once the clock passes the start point again, readings resume.
  SkewClock::Current += std::chrono::seconds(32);
  EXPECT_DOUBLE_EQ(T.seconds(), 2.0);
  T.restart();
  EXPECT_EQ(T.seconds(), 0.0);
  SkewClock::Current -= std::chrono::milliseconds(1);
  EXPECT_EQ(T.seconds(), 0.0);
}

TEST(Json, EscapesQuotesBackslashesAndControlCharacters) {
  EXPECT_EQ(jsonEscape("plain ascii 123"), "plain ascii 123");
  EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(jsonEscape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(jsonEscape("tab\there"), "tab\\u0009here");
  EXPECT_EQ(jsonEscape("cr\rhere"), "cr\\u000dhere");
  EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(jsonEscape(std::string(1, '\x1f')), "\\u001f");
  // An embedded NUL escapes instead of truncating the string.
  std::string Nul = "a";
  Nul += '\0';
  Nul += 'b';
  EXPECT_EQ(jsonEscape(Nul), "a\\u0000b");
  // High-bit bytes (UTF-8 sequences) pass through untouched.
  EXPECT_EQ(jsonEscape("caf\xc3\xa9"), "caf\xc3\xa9");
  // 0x20 itself (space) is the first unescaped code point.
  EXPECT_EQ(jsonEscape(" "), " ");
}

TEST(Json, NumbersRenderFiniteValuesAndNullOtherwise) {
  EXPECT_EQ(jsonNumber(0.0), "0");
  EXPECT_EQ(jsonNumber(1.5), "1.5");
  EXPECT_EQ(jsonNumber(-2.25), "-2.25");
  EXPECT_EQ(jsonNumber(1e100), "1e+100");
  // %.12g keeps timing-scale precision without float noise.
  EXPECT_EQ(jsonNumber(0.123456789), "0.123456789");
  // JSON has no NaN/Infinity tokens: non-finite renders as null.
  EXPECT_EQ(jsonNumber(std::nan("")), "null");
  EXPECT_EQ(jsonNumber(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(jsonNumber(-std::numeric_limits<double>::infinity()), "null");
}
