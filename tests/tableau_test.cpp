//===- tests/tableau_test.cpp - Stabilizer tableau unit tests -------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//

#include "pauli/Tableau.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace veriqec;

namespace {

Pauli pauliOf(const char *S) {
  auto P = Pauli::fromString(S);
  EXPECT_TRUE(P.has_value());
  return *P;
}

} // namespace

TEST(Tableau, InitialStateIsAllZeros) {
  Tableau T(3);
  for (size_t Q = 0; Q != 3; ++Q)
    EXPECT_TRUE(T.isStabilizedBy(Pauli::single(3, Q, PauliKind::Z)));
  EXPECT_FALSE(T.isStabilizedBy(Pauli::single(3, 0, PauliKind::X)));
}

TEST(Tableau, HadamardCreatesPlusState) {
  Tableau T(1);
  T.applyGate(GateKind::H, 0);
  EXPECT_TRUE(T.isStabilizedBy(pauliOf("X")));
  EXPECT_FALSE(T.deterministicOutcome(pauliOf("Z")).has_value());
}

TEST(Tableau, BellPairStabilizers) {
  Tableau T(2);
  T.applyGate(GateKind::H, 0);
  T.applyGate(GateKind::CNOT, 0, 1);
  EXPECT_TRUE(T.isStabilizedBy(pauliOf("XX")));
  EXPECT_TRUE(T.isStabilizedBy(pauliOf("ZZ")));
  EXPECT_FALSE(T.isStabilizedBy(pauliOf("ZI")));
}

TEST(Tableau, GhzStateStabilizers) {
  Tableau T(3);
  T.applyGate(GateKind::H, 0);
  T.applyGate(GateKind::CNOT, 0, 1);
  T.applyGate(GateKind::CNOT, 1, 2);
  EXPECT_TRUE(T.isStabilizedBy(pauliOf("XXX")));
  EXPECT_TRUE(T.isStabilizedBy(pauliOf("ZZI")));
  EXPECT_TRUE(T.isStabilizedBy(pauliOf("IZZ")));
}

TEST(Tableau, PauliErrorFlipsSign) {
  Tableau T(1);
  // |0> with X error becomes |1>, stabilized by -Z.
  T.applyPauli(pauliOf("X"));
  EXPECT_TRUE(T.isStabilizedBy(pauliOf("-Z")));
  EXPECT_FALSE(T.isStabilizedBy(pauliOf("Z")));
}

TEST(Tableau, MeasurementDeterministicOutcome) {
  Tableau T(2);
  Rng R(1);
  EXPECT_FALSE(T.measure(pauliOf("ZI"), R)); // |0>: outcome 0
  T.applyPauli(pauliOf("XI"));
  EXPECT_TRUE(T.measure(pauliOf("ZI"), R)); // |1>: outcome 1
}

TEST(Tableau, MeasurementCollapsesState) {
  Rng R(2);
  // Measure X on |0>: random outcome; afterwards X is deterministic with
  // the same outcome.
  for (int Trial = 0; Trial != 20; ++Trial) {
    Tableau T(1);
    bool Outcome = T.measure(pauliOf("X"), R);
    auto Det = T.deterministicOutcome(pauliOf("X"));
    ASSERT_TRUE(Det.has_value());
    EXPECT_EQ(*Det, Outcome);
  }
}

TEST(Tableau, ForcedMeasurementPostselects) {
  Rng R(3);
  Tableau T(1);
  bool Outcome = T.measure(pauliOf("X"), R, /*Forced=*/true);
  EXPECT_TRUE(Outcome);
  EXPECT_TRUE(T.isStabilizedBy(pauliOf("-X")));
}

TEST(Tableau, BellMeasurementCorrelations) {
  Rng R(4);
  for (int Trial = 0; Trial != 20; ++Trial) {
    Tableau T(2);
    T.applyGate(GateKind::H, 0);
    T.applyGate(GateKind::CNOT, 0, 1);
    bool M0 = T.measure(pauliOf("ZI"), R);
    bool M1 = T.measure(pauliOf("IZ"), R);
    EXPECT_EQ(M0, M1);
  }
}

TEST(Tableau, ResetReturnsToZero) {
  Rng R(5);
  Tableau T(2);
  T.applyGate(GateKind::H, 0);
  T.applyGate(GateKind::CNOT, 0, 1);
  T.reset(0, R);
  EXPECT_TRUE(T.isStabilizedBy(pauliOf("ZI")));
}

TEST(Tableau, SteaneCodeLogicalPlusPreparation) {
  // Prepare |+>_L of the Steane code by measuring all six generators
  // (postselecting outcome 0) on |+>^7, then check the stabilizer group.
  const char *Gens[6] = {"XIXIXIX", "IXXIIXX", "IIIXXXX",
                         "ZIZIZIZ", "IZZIIZZ", "IIIZZZZ"};
  Rng R(6);
  Tableau T(7);
  for (size_t Q = 0; Q != 7; ++Q)
    T.applyGate(GateKind::H, Q);
  // |+>^7 is already stabilized by the X generators and logical X; the Z
  // generator measurements are random -> force outcome 0.
  for (const char *G : Gens)
    T.measure(pauliOf(G), R, /*Forced=*/false);
  for (const char *G : Gens)
    EXPECT_TRUE(T.isStabilizedBy(pauliOf(G)));
  EXPECT_TRUE(T.isStabilizedBy(pauliOf("XXXXXXX"))); // logical X
}

TEST(Tableau, MeasureThenErrorGivesSyndrome) {
  // Steane code: a single X error on qubit 2 (0-based) must trip the Z
  // checks containing qubit 2: g4 = Z0 Z2 Z4 Z6, g5 = Z1 Z2 Z5 Z6.
  const char *Gens[6] = {"XIXIXIX", "IXXIIXX", "IIIXXXX",
                         "ZIZIZIZ", "IZZIIZZ", "IIIZZZZ"};
  Rng R(7);
  Tableau T(7);
  for (size_t Q = 0; Q != 7; ++Q)
    T.applyGate(GateKind::H, Q);
  for (const char *G : Gens)
    T.measure(pauliOf(G), R, false);

  T.applyPauli(Pauli::single(7, 2, PauliKind::X));

  EXPECT_TRUE(T.measure(pauliOf("ZIZIZIZ"), R));  // hit
  EXPECT_TRUE(T.measure(pauliOf("IZZIIZZ"), R));  // hit
  EXPECT_FALSE(T.measure(pauliOf("IIIZZZZ"), R)); // miss
  EXPECT_FALSE(T.measure(pauliOf("XIXIXIX"), R)); // X checks unaffected
}
