//===- tests/verifier_test.cpp - End-to-end verification tests ------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Integration tests of the whole pipeline: scenario -> symbolic flow ->
/// VC -> SAT. Positive cases (correct codes/decoders verify) and negative
/// cases (weakened contracts or over-budget errors yield counterexamples),
/// including the paper's Section 5.2 Steane case study with Y, H and T
/// errors and the fault-tolerant scenarios of Fig. 9/10.
///
//===----------------------------------------------------------------------===//

#include "qec/Codes.h"
#include "verifier/Verifier.h"

#include <gtest/gtest.h>

using namespace veriqec;

namespace {

VerificationResult verifyOk(const Scenario &S, const VerifyOptions &O = {}) {
  VerificationResult R = verifyScenario(S, O);
  EXPECT_TRUE(R.StructuralOk) << S.Name << ": " << R.Error;
  return R;
}

} // namespace

TEST(Verifier, RepetitionCodeCorrectsBitFlips) {
  // Example 4.2's setting: the 3-qubit repetition code corrects one X.
  StabilizerCode Code = makeRepetitionCode(3);
  Scenario S = makeMemoryScenario(Code, PauliKind::X, LogicalBasis::Z, 1);
  VerificationResult R = verifyOk(S);
  EXPECT_TRUE(R.Verified) << "counterexample exists";
}

TEST(Verifier, RepetitionCodeFailsBeyondBudget) {
  StabilizerCode Code = makeRepetitionCode(3);
  Scenario S = makeMemoryScenario(Code, PauliKind::X, LogicalBasis::Z, 2);
  VerificationResult R = verifyOk(S);
  EXPECT_FALSE(R.Verified);
  EXPECT_FALSE(R.CounterExample.empty());
  // The counterexample must use at least two errors.
  int Errors = 0;
  for (const std::string &E : S.ErrorVars)
    Errors += R.CounterExample.at(E);
  EXPECT_GE(Errors, 2);
}

TEST(Verifier, RepetitionCodeCannotCorrectPhaseFlips) {
  // A single Z error is a logical operator for the repetition code. It is
  // invisible to the Z-basis family (Z errors commute with everything
  // Z-type), so the X-basis family exposes the failure — the reason the
  // adequacy theorem (footnote 1) requires both families.
  StabilizerCode Code = makeRepetitionCode(3);
  Scenario SZ = makeMemoryScenario(Code, PauliKind::Z, LogicalBasis::Z, 1);
  EXPECT_TRUE(verifyOk(SZ).Verified);
  Scenario SX = makeMemoryScenario(Code, PauliKind::Z, LogicalBasis::X, 1);
  EXPECT_FALSE(verifyOk(SX).Verified);
}

struct MemoryCase {
  const char *Label;
  StabilizerCode (*Make)();
  PauliKind ErrorKind;
  LogicalBasis Basis;
  uint32_t MaxErrors;
  bool ExpectVerified;
};

namespace {
StabilizerCode steane() { return makeSteaneCode(); }
StabilizerCode fiveQubit() { return makeFiveQubitCode(); }
StabilizerCode surface3() { return makeRotatedSurfaceCode(3); }
StabilizerCode xzzx33() { return makeXzzxSurfaceCode(3, 3); }
StabilizerCode honeycomb() { return makeHoneycombSubstitute(); }
} // namespace

class MemoryScenarioTest : public ::testing::TestWithParam<MemoryCase> {};

TEST_P(MemoryScenarioTest, VerifiesAsExpected) {
  const MemoryCase &C = GetParam();
  StabilizerCode Code = C.Make();
  Scenario S =
      makeMemoryScenario(Code, C.ErrorKind, C.Basis, C.MaxErrors);
  VerificationResult R = verifyOk(S);
  EXPECT_EQ(R.Verified, C.ExpectVerified) << C.Label;
}

INSTANTIATE_TEST_SUITE_P(
    Codes, MemoryScenarioTest,
    ::testing::Values(
        MemoryCase{"steane_Y_t1_Z", steane, PauliKind::Y, LogicalBasis::Z, 1,
                   true},
        MemoryCase{"steane_Y_t1_X", steane, PauliKind::Y, LogicalBasis::X, 1,
                   true},
        MemoryCase{"steane_X_t1", steane, PauliKind::X, LogicalBasis::Z, 1,
                   true},
        MemoryCase{"steane_Z_t1", steane, PauliKind::Z, LogicalBasis::X, 1,
                   true},
        MemoryCase{"steane_Y_t2_fails", steane, PauliKind::Y,
                   LogicalBasis::Z, 2, false},
        MemoryCase{"five_qubit_Y_t1", fiveQubit, PauliKind::Y,
                   LogicalBasis::Z, 1, true},
        MemoryCase{"five_qubit_X_t1", fiveQubit, PauliKind::X,
                   LogicalBasis::X, 1, true},
        MemoryCase{"surface3_X_t1", surface3, PauliKind::X, LogicalBasis::Z,
                   1, true},
        MemoryCase{"surface3_Y_t1", surface3, PauliKind::Y, LogicalBasis::Z,
                   1, true},
        MemoryCase{"surface3_Y_t2_fails", surface3, PauliKind::Y,
                   LogicalBasis::Z, 2, false},
        MemoryCase{"xzzx33_Y_t1", xzzx33, PauliKind::Y, LogicalBasis::Z, 1,
                   true},
        MemoryCase{"honeycomb19_Y_t2", honeycomb, PauliKind::Y,
                   LogicalBasis::Z, 2, true}),
    [](const ::testing::TestParamInfo<MemoryCase> &Info) {
      return std::string(Info.param.Label);
    });

TEST(Verifier, SurfaceFiveCorrectsTwoErrors) {
  StabilizerCode Code = makeRotatedSurfaceCode(5);
  Scenario S = makeMemoryScenario(Code, PauliKind::Y, LogicalBasis::Z, 2);
  VerificationResult R = verifyOk(S);
  EXPECT_TRUE(R.Verified);
}

TEST(Verifier, SteaneLogicalHadamard) {
  // The running example, Eqn. (2): Steane(Y, H) with at most one error
  // among propagation + standard errors maps |+>_L to |0>_L.
  StabilizerCode Code = makeSteaneCode();
  for (LogicalBasis Basis : {LogicalBasis::X, LogicalBasis::Z}) {
    Scenario S = makeLogicalHScenario(Code, PauliKind::Y, Basis, 1);
    VerificationResult R = verifyOk(S);
    EXPECT_TRUE(R.Verified) << (Basis == LogicalBasis::X ? "X" : "Z");
  }
}

TEST(Verifier, SteaneLogicalHadamardOverBudgetFails) {
  StabilizerCode Code = makeSteaneCode();
  Scenario S = makeLogicalHScenario(Code, PauliKind::Y, LogicalBasis::X, 2);
  VerificationResult R = verifyOk(S);
  EXPECT_FALSE(R.Verified);
}

TEST(Verifier, SteaneHErrorAtEveryLocation) {
  // Section 5.2 / Appendix C.2: a single H error anywhere is corrected.
  StabilizerCode Code = makeSteaneCode();
  for (size_t Loc = 0; Loc != 7; ++Loc) {
    Scenario S = makeNonPauliErrorScenario(Code, GateKind::H, Loc,
                                           LogicalBasis::X);
    VerificationResult R = verifyOk(S);
    EXPECT_TRUE(R.Verified) << "H error at " << Loc;
  }
}

TEST(Verifier, SteaneTErrorAtEveryLocation) {
  // Section 5.2.2: a single T error anywhere (the case-3 heuristic path).
  StabilizerCode Code = makeSteaneCode();
  for (size_t Loc = 0; Loc != 7; ++Loc) {
    for (LogicalBasis Basis : {LogicalBasis::X, LogicalBasis::Z}) {
      Scenario S =
          makeNonPauliErrorScenario(Code, GateKind::T, Loc, Basis);
      VerificationResult R = verifyOk(S);
      EXPECT_TRUE(R.Verified)
          << "T error at " << Loc
          << " basis=" << (Basis == LogicalBasis::X ? "X" : "Z");
    }
  }
}

TEST(Verifier, WeakenedContractYieldsCounterexample) {
  // Removing the minimum-weight half of P_f admits adversarial decoders:
  // verification must now fail and surface a model.
  StabilizerCode Code = makeSteaneCode();
  Scenario S = makeMemoryScenario(Code, PauliKind::X, LogicalBasis::Z, 1);
  S.Weights.clear();
  VerificationResult R = verifyOk(S);
  EXPECT_FALSE(R.Verified);
  EXPECT_FALSE(R.CounterExample.empty());
}

TEST(Verifier, WeakenedSyndromeMatchYieldsCounterexample) {
  StabilizerCode Code = makeSteaneCode();
  Scenario S = makeMemoryScenario(Code, PauliKind::X, LogicalBasis::Z, 1);
  S.Parity.clear();
  VerificationResult R = verifyOk(S);
  EXPECT_FALSE(R.Verified);
}

TEST(Verifier, MultiCycleMemory) {
  StabilizerCode Code = makeSteaneCode();
  Scenario S =
      makeMultiCycleScenario(Code, PauliKind::X, LogicalBasis::Z, 2, 1);
  VerificationResult R = verifyOk(S);
  EXPECT_TRUE(R.Verified);
}

TEST(Verifier, CorrectionStepError) {
  StabilizerCode Code = makeSteaneCode();
  Scenario S = makeCorrectionStepErrorScenario(Code, PauliKind::X,
                                               LogicalBasis::Z, 1);
  VerificationResult R = verifyOk(S);
  EXPECT_TRUE(R.Verified);
}

TEST(Verifier, FaultTolerantGhzPreparation) {
  // Fig. 9 on three Steane blocks (21 qubits).
  StabilizerCode Code = makeSteaneCode();
  for (LogicalBasis Basis : {LogicalBasis::Z, LogicalBasis::X}) {
    Scenario S = makeGhzScenario(Code, PauliKind::Y, Basis, 1);
    VerificationResult R = verifyOk(S);
    EXPECT_TRUE(R.Verified)
        << "basis " << (Basis == LogicalBasis::X ? "X" : "Z");
  }
}

TEST(Verifier, LogicalCnotWithPropagatedErrors) {
  // Fig. 10 on two Steane blocks (14 qubits).
  StabilizerCode Code = makeSteaneCode();
  Scenario S =
      makeLogicalCnotScenario(Code, PauliKind::Y, LogicalBasis::Z, 1);
  VerificationResult R = verifyOk(S);
  EXPECT_TRUE(R.Verified);
}

TEST(Verifier, ParallelAgreesWithSequential) {
  StabilizerCode Code = makeRotatedSurfaceCode(3);
  Scenario S = makeMemoryScenario(Code, PauliKind::Y, LogicalBasis::Z, 1);
  VerificationResult Seq = verifyOk(S);
  VerifyOptions PO;
  PO.Parallel = true;
  PO.Threads = 4;
  VerificationResult Par = verifyOk(S, PO);
  EXPECT_EQ(Seq.Verified, Par.Verified);
  EXPECT_TRUE(Par.Verified);
  EXPECT_GT(Par.NumCubes, 1u);
}

TEST(Verifier, DetectionPropertyMatchesDistance) {
  // Eqn. (15): with d_t = d every error of weight < d is detectable;
  // d_t = d + 1 exposes a minimum-weight logical operator.
  StabilizerCode Code = makeSteaneCode();
  DetectionResult Holds = verifyDetection(Code, 2);
  EXPECT_TRUE(Holds.Detects);
  DetectionResult Fails = verifyDetection(Code, 3);
  EXPECT_FALSE(Fails.Detects);
  ASSERT_TRUE(Fails.CounterExample.has_value());
  EXPECT_EQ(Fails.CounterExample->weight(), 3u);
  EXPECT_TRUE(Code.isLogicalOperator(*Fails.CounterExample));
}

TEST(Verifier, DetectionOnErrorDetectionCodes) {
  // The d=2 family detects all single-qubit errors (Table 3 last block).
  for (StabilizerCode Code :
       {makeCube832(), makeCampbellHowardSubstitute(2)}) {
    DetectionResult R = verifyDetection(Code, 1);
    EXPECT_TRUE(R.Detects) << Code.Name;
  }
}

TEST(Verifier, UserConstraintRestrictsErrors) {
  // Over-budget verification fails in general but succeeds if the user
  // constrains errors to a correctable subset (Section 7.2 flavour).
  StabilizerCode Code = makeSteaneCode();
  Scenario S = makeMemoryScenario(Code, PauliKind::X, LogicalBasis::Z, 2);
  VerificationResult Unconstrained = verifyOk(S);
  EXPECT_FALSE(Unconstrained.Verified);

  VerifyOptions O;
  O.ExtraConstraint = [&S](smt::BoolContext &Ctx) {
    // Locality: errors only on qubits 0 and 3 (which are correctable as a
    // pair? no — restrict to a single segment: qubits 0..2, at most 1).
    std::vector<smt::ExprRef> Seg;
    for (size_t Q = 0; Q != S.ErrorVars.size(); ++Q)
      if (Q >= 3)
        Seg.push_back(Ctx.mkNot(Ctx.mkVar(S.ErrorVars[Q])));
    std::vector<smt::ExprRef> First;
    for (size_t Q = 0; Q != 3; ++Q)
      First.push_back(Ctx.mkVar(S.ErrorVars[Q]));
    Seg.push_back(Ctx.mkAtMost(First, 1));
    return Ctx.mkAnd(std::move(Seg));
  };
  VerificationResult Constrained = verifyOk(S, O);
  EXPECT_TRUE(Constrained.Verified);
}
