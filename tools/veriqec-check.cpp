//===- tools/veriqec-check.cpp - Standalone proof checker ------------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The independent half of proof-emitting verification: reads one clause
/// proof (a file argument, or stdin when the argument is "-" or absent)
/// and replays it with proof::checkProof. Deliberately tiny — this binary
/// compiles from exactly two translation units (this file and
/// src/proof/ProofCheck.cpp) and does not link the veriqec library, so no
/// solver bug can be shared with the checker. Exit 0 = the proof checks,
/// 1 = it does not, 2 = usage or I/O error.
///
//===----------------------------------------------------------------------===//

#include "proof/ProofCheck.h"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

int main(int Argc, char **Argv) {
  bool Quiet = false;
  std::string Path;
  for (int I = 1; I != Argc; ++I) {
    std::string A = Argv[I];
    if (A == "-q" || A == "--quiet") {
      Quiet = true;
    } else if (A == "-h" || A == "--help") {
      std::printf("usage: veriqec-check [-q] [PROOF-FILE|-]\n"
                  "\n"
                  "Replays a veriqec clause proof (reverse unit propagation\n"
                  "plus GF(2) elimination) read from PROOF-FILE or stdin.\n"
                  "Exit 0 = proof checks, 1 = rejected, 2 = usage/IO error.\n");
      return 0;
    } else if (!A.empty() && A[0] == '-' && A != "-") {
      std::fprintf(stderr, "veriqec-check: unknown option '%s'\n", A.c_str());
      return 2;
    } else if (Path.empty()) {
      Path = A;
    } else {
      std::fprintf(stderr, "veriqec-check: more than one input\n");
      return 2;
    }
  }

  std::string Text;
  if (Path.empty() || Path == "-") {
    std::ostringstream Buf;
    Buf << std::cin.rdbuf();
    Text = Buf.str();
  } else {
    std::ifstream In(Path, std::ios::binary);
    if (!In) {
      std::fprintf(stderr, "veriqec-check: cannot open %s\n", Path.c_str());
      return 2;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Text = Buf.str();
  }

  veriqec::proof::CheckResult R = veriqec::proof::checkProof(Text);
  if (!R.Ok) {
    std::fprintf(stderr, "veriqec-check: REJECTED: %s\n", R.Error.c_str());
    return 1;
  }
  if (!Quiet)
    std::printf("veriqec-check: OK  %llu vars, %llu clauses, %llu xor rows, "
                "%llu replay records, %llu streams, %llu additions, "
                "%llu deletions, %llu conclusions%s\n",
                static_cast<unsigned long long>(R.NumVars),
                static_cast<unsigned long long>(R.HeaderClauses),
                static_cast<unsigned long long>(R.XorRows),
                static_cast<unsigned long long>(R.ReplayRecords),
                static_cast<unsigned long long>(R.Streams),
                static_cast<unsigned long long>(R.Additions),
                static_cast<unsigned long long>(R.Deletions),
                static_cast<unsigned long long>(R.Conclusions),
                R.GlobalUnsat ? ", globally unsat" : "");
  return 0;
}
