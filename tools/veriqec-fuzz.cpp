//===- tools/veriqec-fuzz.cpp - Differential fuzzing driver ----------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded differential fuzzing of the whole verification stack: generate
/// random scenarios (random codes, shapes, error models, budgets, user
/// constraints), run each through every engine configuration — the
/// GF(2)-preprocessed pipeline is cross-checked against the legacy
/// unpreprocessed path, sequential and cube-and-conquer alike — validate
/// every counterexample certificate (including reconstructed
/// preprocessor-eliminated variables), and cross-check verdicts against
/// the brute-force and sampling oracles. Exit code 0 = no discrepancy,
/// 1 = discrepancies found (seeds reported, and appended to
/// --out-failures when given), 2 = usage error.
///
//===----------------------------------------------------------------------===//

#include "support/Json.h"
#include "testing/DifferentialHarness.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

using namespace veriqec;
using namespace veriqec::testing;

namespace {

struct FuzzCliOptions {
  uint64_t Seeds = 100;
  uint64_t BaseSeed = 1;
  size_t MaxQubits = 9;
  uint32_t MaxErrors = 2;
  size_t Jobs = 4;
  size_t DistWorkers = 2;
  uint64_t BruteBudget = 300000;
  uint64_t SamplingTrials = 1500;
  bool Json = false;
  bool Verbose = false;
  std::string OutFailures;
  /// Proof oracle: every verified verdict of every configuration must
  /// come with a clause proof the independent checker accepts.
  bool CheckProofs = false;
  /// Where to dump proofs the checker rejected (next to the failing
  /// seed in --out-failures, for CI artifact upload).
  std::string ProofDir;
};

void printUsage(std::FILE *To) {
  std::fprintf(
      To,
      "usage: veriqec-fuzz [options]\n"
      "\n"
      "  --seeds N          number of random cases (default 100)\n"
      "  --seed S           base seed; case i uses seed S+i (default 1)\n"
      "  --max-qubits N     cap on total scenario qubits (default 9)\n"
      "  --max-errors T     cap on the drawn error budget (default 2)\n"
      "  --jobs N           widest parallel configuration (default 4)\n"
      "  --dist-workers N   workers of the dist-loopback configuration\n"
      "                     (full wire codec + scheduler; 0 = off,\n"
      "                     default 2)\n"
      "  --brute-budget N   brute-force oracle replay cap (default 300000)\n"
      "  --samples N        sampling-refuter trials, 0 = off (default 1500)\n"
      "  --out-failures F   append failing seeds to file F, one per line\n"
      "  --check-proofs     proof oracle: log clause proofs in every\n"
      "                     configuration and replay each verified\n"
      "                     verdict's proof with the independent checker\n"
      "  --proof-dir DIR    write rejected proofs to DIR (one file per\n"
      "                     seed and configuration)\n"
      "  --json             machine-readable report on stdout\n"
      "  --verbose          print every case, not just failures\n");
}

} // namespace

int main(int Argc, char **Argv) {
  FuzzCliOptions Cli;
  std::vector<std::string> Args(Argv + 1, Argv + Argc);
  auto needValue = [&](size_t &I) -> const std::string * {
    if (I + 1 >= Args.size()) {
      std::fprintf(stderr, "veriqec-fuzz: %s needs a value\n",
                   Args[I].c_str());
      return nullptr;
    }
    return &Args[++I];
  };
  for (size_t I = 0; I < Args.size(); ++I) {
    const std::string &A = Args[I];
    const std::string *V = nullptr;
    if (A == "--json") {
      Cli.Json = true;
    } else if (A == "--verbose") {
      Cli.Verbose = true;
    } else if (A == "--seeds") {
      if (!(V = needValue(I)))
        return 2;
      Cli.Seeds = std::strtoull(V->c_str(), nullptr, 10);
    } else if (A == "--seed") {
      if (!(V = needValue(I)))
        return 2;
      Cli.BaseSeed = std::strtoull(V->c_str(), nullptr, 10);
    } else if (A == "--max-qubits") {
      if (!(V = needValue(I)))
        return 2;
      Cli.MaxQubits = std::strtoul(V->c_str(), nullptr, 10);
    } else if (A == "--max-errors") {
      if (!(V = needValue(I)))
        return 2;
      Cli.MaxErrors =
          static_cast<uint32_t>(std::strtoul(V->c_str(), nullptr, 10));
    } else if (A == "--jobs") {
      if (!(V = needValue(I)))
        return 2;
      Cli.Jobs = std::strtoul(V->c_str(), nullptr, 10);
    } else if (A == "--dist-workers") {
      if (!(V = needValue(I)))
        return 2;
      Cli.DistWorkers = std::strtoul(V->c_str(), nullptr, 10);
    } else if (A == "--brute-budget") {
      if (!(V = needValue(I)))
        return 2;
      Cli.BruteBudget = std::strtoull(V->c_str(), nullptr, 10);
    } else if (A == "--samples") {
      if (!(V = needValue(I)))
        return 2;
      Cli.SamplingTrials = std::strtoull(V->c_str(), nullptr, 10);
    } else if (A == "--out-failures") {
      if (!(V = needValue(I)))
        return 2;
      Cli.OutFailures = *V;
    } else if (A == "--check-proofs") {
      Cli.CheckProofs = true;
    } else if (A == "--proof-dir") {
      if (!(V = needValue(I)))
        return 2;
      Cli.ProofDir = *V;
    } else if (A == "--help" || A == "-h") {
      printUsage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "veriqec-fuzz: unknown option '%s'\n", A.c_str());
      printUsage(stderr);
      return 2;
    }
  }
  if (Cli.MaxQubits < 3) {
    std::fprintf(stderr, "veriqec-fuzz: --max-qubits must be >= 3\n");
    return 2;
  }

  FuzzerOptions FO;
  FO.MaxQubits = Cli.MaxQubits;
  FO.MaxErrorBudget = Cli.MaxErrors;
  HarnessOptions HO;
  HO.Jobs = Cli.Jobs;
  HO.BruteBudget = Cli.BruteBudget;
  HO.SamplingTrials = Cli.SamplingTrials;
  HO.DistWorkers = Cli.DistWorkers;
  HO.CheckProofs = Cli.CheckProofs;

  uint64_t Clean = 0, Verified = 0, Failed = 0, Other = 0;
  uint64_t BruteRuns = 0, SamplingRuns = 0, ProofsChecked = 0;
  double Seconds = 0;
  std::vector<uint64_t> FailingSeeds;

  if (Cli.Json)
    std::printf("{\"base_seed\": %llu, \"cases\": [\n",
                static_cast<unsigned long long>(Cli.BaseSeed));
  for (uint64_t I = 0; I != Cli.Seeds; ++I) {
    uint64_t Seed = Cli.BaseSeed + I;
    FuzzCase Case = generateFuzzCase(Seed, FO);
    HO.RandomSeed = Seed;
    CaseReport Report = runDifferential(Case, HO);

    Clean += Report.clean();
    Verified += Report.Consensus == 'V';
    Failed += Report.Consensus == 'F';
    Other += Report.Consensus != 'V' && Report.Consensus != 'F';
    BruteRuns += Report.BruteRan;
    SamplingRuns += Report.SamplingRan;
    ProofsChecked += Report.ProofsChecked;
    Seconds += Report.Seconds;
    if (!Report.clean())
      FailingSeeds.push_back(Seed);

    // Save any proof the checker rejected: the certificate itself is the
    // bug report, so it rides along as a CI artifact next to the seed.
    if (!Report.RejectedProofs.empty() && !Cli.ProofDir.empty()) {
      std::error_code Ec;
      std::filesystem::create_directories(Cli.ProofDir, Ec);
      for (const auto &[Config, Proof] : Report.RejectedProofs) {
        std::string Path = Cli.ProofDir + "/seed-" + std::to_string(Seed) +
                           "-" + Config + ".proof";
        std::ofstream Out(Path, std::ios::binary);
        Out << Proof;
      }
    }

    if (Cli.Json) {
      std::printf("  {\"seed\": %llu, \"case\": \"%s\", "
                  "\"consensus\": \"%c\", \"clean\": %s",
                  static_cast<unsigned long long>(Seed),
                  jsonEscape(Report.Description).c_str(), Report.Consensus,
                  Report.clean() ? "true" : "false");
      if (!Report.clean()) {
        std::printf(", \"discrepancies\": [");
        for (size_t D = 0; D != Report.Discrepancies.size(); ++D)
          std::printf("%s\"%s\"", D ? ", " : "",
                      jsonEscape(Report.Discrepancies[D]).c_str());
        std::printf("]");
      }
      std::printf("}%s\n", I + 1 == Cli.Seeds ? "" : ",");
    } else if (Cli.Verbose || !Report.clean()) {
      std::printf("%s %s consensus=%c%s\n",
                  Report.clean() ? "ok  " : "FAIL",
                  Report.Description.c_str(), Report.Consensus,
                  Report.BruteRan ? " [brute]" : "");
      for (const std::string &D : Report.Discrepancies)
        std::printf("     %s\n", D.c_str());
    }
  }

  if (Cli.Json) {
    std::printf("], \"clean\": %llu, \"discrepant\": %llu}\n",
                static_cast<unsigned long long>(Clean),
                static_cast<unsigned long long>(Cli.Seeds - Clean));
  } else {
    std::printf("fuzz: %llu cases (%llu verified, %llu refuted, %llu "
                "other), %llu clean, %llu discrepant; oracle coverage: "
                "%llu brute, %llu sampling, %llu proofs; %.1f s\n",
                static_cast<unsigned long long>(Cli.Seeds),
                static_cast<unsigned long long>(Verified),
                static_cast<unsigned long long>(Failed),
                static_cast<unsigned long long>(Other),
                static_cast<unsigned long long>(Clean),
                static_cast<unsigned long long>(Cli.Seeds - Clean),
                static_cast<unsigned long long>(BruteRuns),
                static_cast<unsigned long long>(SamplingRuns),
                static_cast<unsigned long long>(ProofsChecked), Seconds);
    for (uint64_t Seed : FailingSeeds)
      std::printf("reproduce with: veriqec-fuzz --seeds 1 --seed %llu\n",
                  static_cast<unsigned long long>(Seed));
  }

  if (!FailingSeeds.empty() && !Cli.OutFailures.empty()) {
    std::ofstream Out(Cli.OutFailures, std::ios::app);
    for (uint64_t Seed : FailingSeeds)
      Out << Seed << "\n";
  }
  return FailingSeeds.empty() ? 0 : 1;
}
