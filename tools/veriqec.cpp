//===- tools/veriqec.cpp - Batch verification CLI driver -------------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One binary for every workload in bench/ and examples/: select codes and
/// scenarios by name, verify a single triple or a whole batch over the
/// work-stealing engine, check the precise-detection property, or parse a
/// program file from the paper's concrete syntax. Supports --jobs,
/// --split-threshold, --card-enc, --seed and --json; exit code 0 =
/// everything verified, 1 = a counterexample was found, 2 = usage or
/// structural error, 3 = inconclusive (a conflict budget was exhausted
/// before a verdict).
///
//===----------------------------------------------------------------------===//

#include "dist/Coordinator.h"
#include "dist/Transport.h"
#include "dist/Worker.h"
#include "engine/VerificationEngine.h"
#include "obs/Metrics.h"
#include "obs/Progress.h"
#include "obs/Trace.h"
#include "prog/Parser.h"
#include "proof/ProofCheck.h"
#include "qec/Codes.h"
#include "support/Json.h"
#include "support/Rng.h"
#include "verifier/Verifier.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace veriqec;

namespace {

// -- Option parsing ----------------------------------------------------------

struct CliOptions {
  std::string Command;
  std::vector<std::string> Codes;
  std::vector<std::string> ScenarioNames{"memory"};
  std::string Suite;
  std::string ProgramFile;
  PauliKind ErrorKind = PauliKind::Y;
  std::string Basis = "Z"; // Z, X or both
  std::optional<uint32_t> MaxErrors;
  size_t Cycles = 2;
  size_t MaxWeight = 0; // detect: 0 = distance - 1
  size_t Jobs = 0;
  bool Sequential = false;
  bool NoPreprocess = false;
  smt::XorMode Xor = smt::XorMode::Auto;
  smt::ChronoMode Chrono = smt::ChronoMode::Auto;
  uint32_t SplitThreshold = 0;
  smt::CardinalityEncoding CardEnc =
      smt::CardinalityEncoding::SequentialCounter;
  uint64_t ConflictBudget = 0;
  uint64_t Seed = 0;
  bool Json = false;
  std::string BenchOut;
  /// Proof-emitting verification: log clause proofs and replay every
  /// UNSAT verdict's proof in-process after the run (verify/distance).
  bool CheckProofs = false;
  /// Dump each UNSAT verdict's proof to this directory (implies proof
  /// logging); the CI mutation smoke corrupts these and feeds them to
  /// veriqec-check.
  std::string ProofDir;
  /// Distributed execution: "loopback:N" runs N in-process workers over
  /// the full codec + scheduler path (verify and distance commands).
  std::string Dist;
  std::string Listen;          ///< serve: host:port to bind
  size_t ExpectWorkers = 1;    ///< serve: wait for this many workers
  std::string Connect;         ///< worker: coordinator host:port
  uint64_t MaxBatches = 0;     ///< worker: crash-after-N test hook
  /// Worker heartbeat period (worker command and loopback fleets); keeps
  /// a grinding worker off the coordinator's silence timer. 0 = off.
  int HeartbeatMs = 500;
  std::string TraceOut;   ///< --trace: Chrome trace-event JSON file
  std::string MetricsOut; ///< --metrics-out: metrics snapshot JSON file
  bool Progress = false;  ///< --progress: live stderr status line
};

void printUsage(std::FILE *To) {
  std::fprintf(
      To,
      "usage: veriqec <command> [options]\n"
      "\n"
      "commands:\n"
      "  list-codes            print the code registry\n"
      "  verify                verify scenarios (batch when several are\n"
      "                        selected; all cubes share one pool)\n"
      "  detect                precise-detection property (Eqn. 15)\n"
      "  distance              code distance by incremental binary search\n"
      "                        over an assumption-activated weight bound\n"
      "                        (exit 1 if a computed distance contradicts\n"
      "                        the registry's documented one)\n"
      "  serve                 run verify workloads as a coordinator:\n"
      "                        shard cubes across remote workers\n"
      "                        (--listen HOST:PORT, --expect-workers N)\n"
      "  worker                join a coordinator and discharge cubes\n"
      "                        (--connect HOST:PORT, --jobs N)\n"
      "  parse <file>          parse a program file and pretty-print it\n"
      "\n"
      "selection:\n"
      "  --code A[,B...]       steane, five-qubit, six-qubit, repetition<N>,\n"
      "                        surface<D>, xzzx<D>, reed-muller<R>,\n"
      "                        gottesman<R>, dodecacode, honeycomb, hgp98,\n"
      "                        tanner1, tanner1-full, tanner2, cube832,\n"
      "                        carbon, triorthogonal<K>, campbell-howard<K>\n"
      "  --scenario A[,B...]   memory, logical-h, multicycle,\n"
      "                        correction-step, ghz, cnot (default memory)\n"
      "  --suite NAME          preset batch: fig4, fig9, table3\n"
      "  --error X|Y|Z         injected Pauli kind (default Y)\n"
      "  --basis Z|X|both      logical basis family (default Z)\n"
      "  --max-errors N        error budget (default (d-1)/2)\n"
      "  --cycles N            rounds for multicycle (default 2)\n"
      "  --max-weight W        detect: max error weight (default d-1)\n"
      "  --program FILE        replace the generated program with FILE\n"
      "\n"
      "engine:\n"
      "  --jobs N              worker threads (default: hardware)\n"
      "  --sequential          disable cube-and-conquer splitting\n"
      "  --no-preprocess       disable GF(2)/XOR preprocessing (legacy\n"
      "                        monolithic Tseitin pipeline)\n"
      "  --xor on|off          native Gauss-in-the-loop XOR reasoning in\n"
      "                        the solver; the default picks per workload\n"
      "                        (on for distance, off elsewhere). on/off\n"
      "                        force either side of the A/B\n"
      "  --chrono on|off|auto  chronological backtracking + trail saving\n"
      "                        in the solvers; the default picks per\n"
      "                        workload (on for distance, off elsewhere).\n"
      "                        on/off force either side of the A/B\n"
      "  --split-threshold T   ET threshold (default: number of qubits)\n"
      "  --card-enc seq|pairwise   cardinality encoding (default seq)\n"
      "  --budget N            conflict budget per solver (default none)\n"
      "  --seed N              seed solver tie-breaking and shuffle the\n"
      "                        batch order (0 = deterministic default)\n"
      "\n"
      "distributed:\n"
      "  --dist loopback:N     verify/distance: run N in-process workers\n"
      "                        behind the full wire codec + scheduler\n"
      "                        (--jobs sets slots per worker, default 1)\n"
      "  --listen HOST:PORT    serve: bind the coordinator here\n"
      "  --expect-workers N    serve: wait for N workers (default 1)\n"
      "  --connect HOST:PORT   worker: coordinator address\n"
      "  --max-batches N       worker: drop the link after N batches\n"
      "                        (crash-recovery testing)\n"
      "  --heartbeat-ms N      worker/loopback: progress heartbeat period\n"
      "                        (0 disables; default 500). Heartbeats let\n"
      "                        the coordinator tell a grinding worker\n"
      "                        from a dead one\n"
      "\n"
      "output:\n"
      "  --json                machine-readable results on stdout\n"
      "  --bench-out FILE      write per-scenario benchmark records\n"
      "                        (wall-clock, conflicts, cubes, encoder and\n"
      "                        preprocessor stats) as JSON to FILE\n"
      "  --trace FILE          record phase spans (encode, preprocess,\n"
      "                        per-cube solve, GC, wire codec) and write\n"
      "                        Chrome trace-event JSON to FILE — open in\n"
      "                        chrome://tracing or Perfetto\n"
      "  --metrics-out FILE    write the metrics-registry snapshot\n"
      "                        (counters, gauges, histograms) to FILE\n"
      "  --progress            live one-line status on stderr while\n"
      "                        cubes are in flight\n"
      "\n"
      "proofs (verify and distance):\n"
      "  --check-proofs        log machine-checkable clause proofs and\n"
      "                        replay every UNSAT verdict's proof after\n"
      "                        the run (exit 2 if any proof is rejected\n"
      "                        or missing)\n"
      "  --proof-dir DIR       write each UNSAT verdict's proof to\n"
      "                        DIR/<name>.proof (implies proof logging;\n"
      "                        check offline with veriqec-check)\n");
}

bool splitList(const std::string &Arg, std::vector<std::string> &Out) {
  Out.clear();
  std::stringstream Ss(Arg);
  std::string Item;
  while (std::getline(Ss, Item, ','))
    if (!Item.empty())
      Out.push_back(Item);
  return !Out.empty();
}

/// Parses "<stem><number>" (e.g. "surface5") into its parts.
bool splitStemNumber(const std::string &Name, const std::string &Stem,
                     size_t &Number) {
  if (Name.size() <= Stem.size() || Name.compare(0, Stem.size(), Stem) != 0)
    return false;
  char *End = nullptr;
  unsigned long V = std::strtoul(Name.c_str() + Stem.size(), &End, 10);
  if (*End != '\0' || V == 0)
    return false;
  Number = V;
  return true;
}

std::optional<StabilizerCode> makeCodeByName(const std::string &Name) {
  size_t N = 0;
  if (Name == "steane")
    return makeSteaneCode();
  if (Name == "five-qubit")
    return makeFiveQubitCode();
  if (Name == "six-qubit")
    return makeSixQubitCode();
  if (Name == "dodecacode")
    return makeDodecacodeSubstitute();
  if (Name == "honeycomb")
    return makeHoneycombSubstitute();
  if (Name == "hgp98")
    return makeHgp98();
  if (Name == "tanner1")
    return makeTannerISubstitute();
  if (Name == "tanner1-full")
    return makeTannerIFull();
  if (Name == "tanner2")
    return makeTannerIISubstitute();
  if (Name == "cube832")
    return makeCube832();
  if (Name == "carbon")
    return makeCarbonSubstitute();
  if (splitStemNumber(Name, "repetition", N))
    return makeRepetitionCode(N);
  if (splitStemNumber(Name, "surface", N))
    return makeRotatedSurfaceCode(N);
  if (splitStemNumber(Name, "xzzx", N))
    return makeXzzxSurfaceCode(N, N);
  if (splitStemNumber(Name, "reed-muller", N))
    return makeReedMullerCode(N);
  if (splitStemNumber(Name, "gottesman", N))
    return makeGottesmanCode(N);
  if (splitStemNumber(Name, "triorthogonal", N))
    return makeTriorthogonalSubstitute(N);
  if (splitStemNumber(Name, "campbell-howard", N))
    return makeCampbellHowardSubstitute(N);
  return std::nullopt;
}

// -- Distributed execution ---------------------------------------------------

/// A coordinator plus (for loopback mode) its in-process worker threads.
/// Destruction shuts the fleet down and joins the threads.
struct DistContext {
  std::unique_ptr<dist::Coordinator> Coord;
  std::vector<std::thread> LoopbackThreads;

  ~DistContext() {
    if (Coord)
      Coord->shutdownWorkers();
    for (std::thread &T : LoopbackThreads)
      if (T.joinable())
        T.join();
  }
};

/// Builds the backend for --dist / serve. True on success; Ctx.Coord
/// stays null when the run is plain in-process.
bool setupDist(const CliOptions &Cli, DistContext &Ctx) {
  if (Cli.Command == "serve") {
    if (Cli.Listen.empty()) {
      std::fprintf(stderr, "veriqec: serve needs --listen HOST:PORT\n");
      return false;
    }
    std::string Err;
    std::unique_ptr<dist::Listener> L = dist::listenTcp(Cli.Listen, Err);
    if (!L) {
      std::fprintf(stderr, "veriqec: cannot listen on %s: %s\n",
                   Cli.Listen.c_str(), Err.c_str());
      return false;
    }
    Ctx.Coord = std::make_unique<dist::Coordinator>();
    std::fprintf(stderr,
                 "veriqec: coordinator on port %u, waiting for %zu "
                 "worker(s)\n",
                 L->port(), Cli.ExpectWorkers);
    Ctx.Coord->attachListener(std::move(L));
    if (!Ctx.Coord->waitForWorkers(Cli.ExpectWorkers, 120000)) {
      std::fprintf(stderr, "veriqec: workers did not register in time\n");
      return false;
    }
    return true;
  }
  if (Cli.Dist.empty())
    return true;
  constexpr size_t MaxLoopbackWorkers = 256;
  size_t N = 0;
  if (Cli.Dist.rfind("loopback:", 0) == 0) {
    const char *Num = Cli.Dist.c_str() + 9;
    char *End = nullptr;
    // strtoul accepts "-1" (wraps to ULONG_MAX): digits only.
    if (Num[0] >= '0' && Num[0] <= '9')
      N = std::strtoul(Num, &End, 10);
    if (End == nullptr || *End != '\0')
      N = 0; // trailing garbage: reject the whole value
  }
  if (N == 0 || N > MaxLoopbackWorkers) {
    std::fprintf(stderr,
                 "veriqec: --dist expects loopback:N (1 <= N <= %zu)\n",
                 MaxLoopbackWorkers);
    return false;
  }
  Ctx.Coord = std::make_unique<dist::Coordinator>();
  dist::WorkerOptions WO;
  WO.Jobs = Cli.Jobs ? Cli.Jobs : 1;
  WO.HeartbeatMs = Cli.HeartbeatMs;
  Ctx.LoopbackThreads = dist::spawnLoopbackWorkers(*Ctx.Coord, N, WO);
  if (!Ctx.Coord->waitForWorkers(N, 10000)) {
    std::fprintf(stderr, "veriqec: loopback workers failed to register\n");
    return false;
  }
  return true;
}

// -- Proof handling ----------------------------------------------------------

/// Post-run proof handling for one UNSAT verdict (--check-proofs /
/// --proof-dir): dumps the proof when a directory was given and replays
/// it in-process when checking was requested. Returns 0 on success, 2
/// when the proof is missing, unwritable or rejected.
int handleProof(const CliOptions &Cli, const std::string &Name,
                const std::string &Proof) {
  if (Proof.empty()) {
    // Proof logging was on and the verdict was UNSAT, so an empty proof
    // is itself a pipeline bug — exactly what --check-proofs gates on.
    if (Cli.CheckProofs) {
      std::fprintf(stderr, "veriqec: %s: UNSAT verdict carries no proof\n",
                   Name.c_str());
      return 2;
    }
    return 0;
  }
  if (!Cli.ProofDir.empty()) {
    std::error_code Ec;
    std::filesystem::create_directories(Cli.ProofDir, Ec);
    std::string Path = Cli.ProofDir + "/" + Name + ".proof";
    std::ofstream Out(Path, std::ios::binary);
    if (!(Out << Proof) || !Out.flush()) {
      std::fprintf(stderr, "veriqec: cannot write %s\n", Path.c_str());
      return 2;
    }
  }
  if (!Cli.CheckProofs)
    return 0;
  // The span lives here, not in checkProof itself: veriqec-check links
  // ProofCheck.cpp standalone and stays observability-free.
  obs::TraceSpan Span("proof_check", {{"bytes", Proof.size()}});
  proof::CheckResult CR = proof::checkProof(Proof);
  if (!CR.Ok) {
    std::fprintf(stderr, "veriqec: %s: proof REJECTED: %s\n", Name.c_str(),
                 CR.Error.c_str());
    return 2;
  }
  return 0;
}

// -- Scenario construction ---------------------------------------------------

uint32_t defaultBudget(const StabilizerCode &Code) {
  return Code.Distance >= 3 ? static_cast<uint32_t>((Code.Distance - 1) / 2)
                            : 1;
}

std::optional<Scenario> makeScenarioByName(const StabilizerCode &Code,
                                           const std::string &Name,
                                           LogicalBasis Basis,
                                           const CliOptions &Cli) {
  uint32_t Budget = Cli.MaxErrors ? *Cli.MaxErrors : defaultBudget(Code);
  if (Name == "memory")
    return makeMemoryScenario(Code, Cli.ErrorKind, Basis, Budget);
  if (Name == "logical-h")
    return makeLogicalHScenario(Code, Cli.ErrorKind, Basis, Budget);
  if (Name == "multicycle")
    return makeMultiCycleScenario(Code, Cli.ErrorKind, Basis, Cli.Cycles,
                                  Budget);
  if (Name == "correction-step")
    return makeCorrectionStepErrorScenario(Code, Cli.ErrorKind, Basis,
                                           Budget);
  if (Name == "ghz")
    return makeGhzScenario(Code, Cli.ErrorKind, Basis, Budget);
  if (Name == "cnot")
    return makeLogicalCnotScenario(Code, Cli.ErrorKind, Basis, Budget);
  return std::nullopt;
}

std::vector<LogicalBasis> selectedBases(const CliOptions &Cli) {
  if (Cli.Basis == "both")
    return {LogicalBasis::Z, LogicalBasis::X};
  return {Cli.Basis == "X" ? LogicalBasis::X : LogicalBasis::Z};
}

/// Expands the --suite presets into (code, scenario) selections.
bool expandSuite(CliOptions &Cli) {
  if (Cli.Suite == "fig4") {
    // General verification on growing surface codes, memory scenario.
    Cli.Codes = {"surface3", "surface5"};
    Cli.ScenarioNames = {"memory"};
    return true;
  }
  if (Cli.Suite == "fig9") {
    // The fault-tolerant gadget scenarios on the Steane code.
    Cli.Codes = {"steane"};
    Cli.ScenarioNames = {"memory", "logical-h", "multicycle",
                         "correction-step", "ghz", "cnot"};
    return true;
  }
  if (Cli.Suite == "table3") {
    // The odd-distance rows of the Table 3 suite at CLI-friendly size.
    Cli.Codes = {"repetition5", "steane",     "five-qubit", "six-qubit",
                 "surface3",    "xzzx3",      "reed-muller3", "dodecacode",
                 "honeycomb"};
    Cli.ScenarioNames = {"memory"};
    return true;
  }
  return Cli.Suite.empty();
}

// -- Output ------------------------------------------------------------------

struct RunRecord {
  std::string Code;
  std::string Scenario;
  std::string Basis;
  size_t NumQubits = 0;
  VerificationResult Result;
};

void printRecordText(const RunRecord &R) {
  if (!R.Result.StructuralOk) {
    std::printf("%-14s %-16s %s  ERROR: %s\n", R.Code.c_str(),
                R.Scenario.c_str(), R.Basis.c_str(), R.Result.Error.c_str());
    return;
  }
  std::printf("%-14s %-16s %s  %-10s %8.1f ms  %5llu/%llu cubes  %llu "
              "conflicts\n",
              R.Code.c_str(), R.Scenario.c_str(), R.Basis.c_str(),
              R.Result.Verified ? "VERIFIED"
              : R.Result.Aborted ? "ABORTED"
                                 : "FAILED",
              R.Result.Seconds * 1e3,
              static_cast<unsigned long long>(R.Result.CubesSolved),
              static_cast<unsigned long long>(R.Result.NumCubes),
              static_cast<unsigned long long>(R.Result.Stats.Conflicts));
  if (!R.Result.Verified && !R.Result.CounterExample.empty()) {
    std::printf("  counterexample:");
    int Shown = 0;
    for (const auto &[Name, Value] : R.Result.CounterExample)
      if (Value && Name[0] == 'e' && Shown++ < 12)
        std::printf(" %s", Name.c_str());
    std::printf("\n");
  }
}

void printRecordJson(const RunRecord &R, bool Last) {
  std::printf("  {\"code\": \"%s\", \"scenario\": \"%s\", \"basis\": \"%s\", "
              "\"qubits\": %zu, ",
              jsonEscape(R.Code).c_str(), jsonEscape(R.Scenario).c_str(),
              R.Basis.c_str(), R.NumQubits);
  if (!R.Result.StructuralOk) {
    std::printf("\"error\": \"%s\"}%s\n", jsonEscape(R.Result.Error).c_str(),
                Last ? "" : ",");
    return;
  }
  std::printf("\"verified\": %s, \"aborted\": %s, \"seconds\": %.6f, "
              "\"goals\": %zu, "
              "\"cubes\": %llu, \"cubes_solved\": %llu, \"conflicts\": %llu, "
              "\"decisions\": %llu, \"propagations\": %llu",
              R.Result.Verified ? "true" : "false",
              R.Result.Aborted ? "true" : "false", R.Result.Seconds,
              R.Result.NumGoals,
              static_cast<unsigned long long>(R.Result.NumCubes),
              static_cast<unsigned long long>(R.Result.CubesSolved),
              static_cast<unsigned long long>(R.Result.Stats.Conflicts),
              static_cast<unsigned long long>(R.Result.Stats.Decisions),
              static_cast<unsigned long long>(R.Result.Stats.propagations()));
  if (!R.Result.Verified && !R.Result.CounterExample.empty()) {
    std::printf(", \"counterexample\": {");
    bool First = true;
    for (const auto &[Name, Value] : R.Result.CounterExample) {
      if (!Value)
        continue;
      std::printf("%s\"%s\": true", First ? "" : ", ",
                  jsonEscape(Name).c_str());
      First = false;
    }
    std::printf("}");
  }
  std::printf("}%s\n", Last ? "" : ",");
}

/// Writes the machine-readable benchmark trajectory file (--bench-out):
/// one record per scenario with wall-clock, solver, cube and
/// encoder/preprocessor statistics, plus the engine configuration that
/// produced them.
bool writeBenchOut(const CliOptions &Cli, const std::vector<RunRecord> &Records,
                   size_t Workers) {
  std::ofstream Out(Cli.BenchOut);
  if (!Out) {
    std::fprintf(stderr, "veriqec: cannot write %s\n", Cli.BenchOut.c_str());
    return false;
  }
  char Buf[2048];
  Out << "{\n  \"config\": {";
  std::snprintf(Buf, sizeof(Buf),
                "\"command\": \"verify\", \"jobs\": %zu, \"workers\": %zu, "
                "\"dist\": \"%s\", "
                "\"sequential\": %s, \"preprocess\": %s, \"xor\": %s, "
                "\"chrono\": %s, "
                "\"split_threshold\": %u, \"card_enc\": \"%s\", "
                "\"conflict_budget\": %llu, \"seed\": %llu",
                Cli.Jobs, Workers,
                Cli.Command == "serve" ? "serve"
                : Cli.Dist.empty()     ? "local"
                                       : jsonEscape(Cli.Dist).c_str(),
                Cli.Sequential ? "true" : "false",
                Cli.NoPreprocess ? "false" : "true",
                // Without preprocessing there are no parity rows to keep
                // native, so the engine is inert regardless of --xor;
                // record what the run actually measured.
                Cli.Xor == smt::XorMode::On && !Cli.NoPreprocess ? "true"
                                                                 : "false",
                // The resolved chrono policy: verification resolves
                // Auto to off (measured negative on the cube path).
                Cli.Chrono == smt::ChronoMode::On ? "true" : "false",
                Cli.SplitThreshold,
                Cli.CardEnc == smt::CardinalityEncoding::SequentialCounter
                    ? "seq"
                    : "pairwise",
                static_cast<unsigned long long>(Cli.ConflictBudget),
                static_cast<unsigned long long>(Cli.Seed));
  Out << Buf << "},\n  \"results\": [\n";
  for (size_t I = 0; I != Records.size(); ++I) {
    const RunRecord &R = Records[I];
    Out << "    {\"code\": \"" << jsonEscape(R.Code) << "\", \"scenario\": \""
        << jsonEscape(R.Scenario) << "\", \"basis\": \"" << R.Basis
        << "\", \"qubits\": " << R.NumQubits;
    if (!R.Result.StructuralOk) {
      Out << ", \"error\": \"" << jsonEscape(R.Result.Error) << "\"}";
    } else {
      const VerificationResult &V = R.Result;
      std::snprintf(
          Buf, sizeof(Buf),
          ", \"verified\": %s, \"aborted\": %s, \"seconds\": %.6f, "
          "\"goals\": %zu, \"cubes\": %llu, \"cubes_solved\": %llu, "
          "\"cubes_pruned\": %llu, \"cubes_pruned_gf2\": %llu, "
          "\"cubes_pruned_core\": %llu, \"split_threshold_used\": %u, "
          "\"conflicts\": %llu, \"decisions\": %llu, "
          "\"propagations\": %llu, \"bin_propagations\": %llu, "
          "\"long_propagations\": %llu, "
          "\"learned\": %llu, \"restarts\": %llu, "
          "\"chrono_backtracks\": %llu, \"out_of_order\": %llu, "
          "\"trail_saved_lits\": %llu, "
          "\"xor_propagations\": %llu, \"xor_conflicts\": %llu, "
          "\"xor_eliminations\": %llu, "
          "\"arena_bytes\": %llu, \"wasted_bytes\": %llu, "
          "\"compactions\": %llu, "
          "\"cnf_vars\": %zu, \"cnf_clauses\": %zu",
          V.Verified ? "true" : "false", V.Aborted ? "true" : "false",
          V.Seconds, V.NumGoals, static_cast<unsigned long long>(V.NumCubes),
          static_cast<unsigned long long>(V.CubesSolved),
          static_cast<unsigned long long>(V.CubesPruned),
          static_cast<unsigned long long>(V.CubesPrunedGf2),
          static_cast<unsigned long long>(V.CubesPrunedCore),
          V.SplitThresholdUsed,
          static_cast<unsigned long long>(V.Stats.Conflicts),
          static_cast<unsigned long long>(V.Stats.Decisions),
          static_cast<unsigned long long>(V.Stats.propagations()),
          static_cast<unsigned long long>(V.Stats.BinPropagations),
          static_cast<unsigned long long>(V.Stats.LongPropagations),
          static_cast<unsigned long long>(V.Stats.LearnedClauses),
          static_cast<unsigned long long>(V.Stats.Restarts),
          static_cast<unsigned long long>(V.Stats.ChronoBacktracks),
          static_cast<unsigned long long>(V.Stats.OutOfOrderAssignments),
          static_cast<unsigned long long>(V.Stats.TrailSavedLits),
          static_cast<unsigned long long>(V.Stats.XorPropagations),
          static_cast<unsigned long long>(V.Stats.XorConflicts),
          static_cast<unsigned long long>(V.Stats.XorEliminations),
          static_cast<unsigned long long>(V.Stats.ArenaBytes),
          static_cast<unsigned long long>(V.Stats.WastedBytes),
          static_cast<unsigned long long>(V.Stats.Compactions),
          V.CnfVars, V.CnfClauses);
      Out << Buf;
      std::snprintf(
          Buf, sizeof(Buf),
          ", \"prep\": {\"linear_conjuncts\": %zu, \"linear_vars\": %zu, "
          "\"rows_kept\": %zu, \"units_fixed\": %zu, "
          "\"vars_eliminated\": %zu, \"equiv_aliased\": %zu, "
          "\"residue_conjuncts\": %zu, "
          "\"trivially_unsat\": %s}}",
          V.Prep.LinearConjuncts, V.Prep.LinearVars, V.Prep.RowsKept,
          V.Prep.UnitsFixed, V.Prep.VarsEliminated, V.Prep.EquivAliased,
          V.Prep.ResidueConjuncts,
          V.Prep.TriviallyUnsat ? "true" : "false");
      Out << Buf;
    }
    Out << (I + 1 == Records.size() ? "\n" : ",\n");
  }
  Out << "  ],\n  \"metrics\": " << obs::Registry::global().snapshotJson()
      << "\n}\n";
  return static_cast<bool>(Out);
}

/// One distance-search record for the distance command's --bench-out.
struct DistanceRecord {
  std::string Code;
  size_t NumQubits = 0;
  DistanceResult Result;
};

/// Benchmark trajectory file of a distance run: per-code wall-clock,
/// solver-call and conflict counts plus the XOR-engine statistics, with
/// the configuration (in particular `xor` on/off) that produced them —
/// the machine-readable half of the `--xor` A/B comparison.
bool writeDistanceBenchOut(const CliOptions &Cli,
                           const std::vector<DistanceRecord> &Records) {
  std::ofstream Out(Cli.BenchOut);
  if (!Out) {
    std::fprintf(stderr, "veriqec: cannot write %s\n", Cli.BenchOut.c_str());
    return false;
  }
  char Buf[2048];
  Out << "{\n  \"config\": {";
  std::snprintf(Buf, sizeof(Buf),
                "\"command\": \"distance\", \"preprocess\": %s, \"xor\": %s, "
                "\"chrono\": %s, "
                "\"conflict_budget\": %llu, \"seed\": %llu",
                Cli.NoPreprocess ? "false" : "true",
                // As in writeBenchOut: --no-preprocess leaves no rows
                // for the XOR engine, so the run is effectively xor-off.
                Cli.Xor != smt::XorMode::Off && !Cli.NoPreprocess
                    ? "true"
                    : "false",
                // Distance resolves Auto to on (assumption-heavy probes).
                Cli.Chrono != smt::ChronoMode::Off ? "true" : "false",
                static_cast<unsigned long long>(Cli.ConflictBudget),
                static_cast<unsigned long long>(Cli.Seed));
  Out << Buf << "},\n  \"results\": [\n";
  for (size_t I = 0; I != Records.size(); ++I) {
    const DistanceRecord &R = Records[I];
    const DistanceResult &D = R.Result;
    Out << "    {\"code\": \"" << jsonEscape(R.Code)
        << "\", \"qubits\": " << R.NumQubits;
    std::snprintf(
        Buf, sizeof(Buf),
        ", \"ok\": %s, \"aborted\": %s, \"distance\": %zu, "
        "\"seconds\": %.6f, \"solver_calls\": %llu, \"conflicts\": %llu, "
        "\"decisions\": %llu, \"propagations\": %llu, "
        "\"bin_propagations\": %llu, \"long_propagations\": %llu, "
        "\"chrono_backtracks\": %llu, \"out_of_order\": %llu, "
        "\"trail_saved_lits\": %llu, "
        "\"xor_propagations\": %llu, \"xor_conflicts\": %llu, "
        "\"xor_eliminations\": %llu, \"xor_rows\": %zu, "
        "\"arena_bytes\": %llu, \"wasted_bytes\": %llu, "
        "\"compactions\": %llu, "
        "\"cnf_vars\": %zu, \"cnf_clauses\": %zu}",
        D.Ok ? "true" : "false", D.Aborted ? "true" : "false", D.Distance,
        D.Seconds, static_cast<unsigned long long>(D.SolverCalls),
        static_cast<unsigned long long>(D.Stats.Conflicts),
        static_cast<unsigned long long>(D.Stats.Decisions),
        static_cast<unsigned long long>(D.Stats.propagations()),
        static_cast<unsigned long long>(D.Stats.BinPropagations),
        static_cast<unsigned long long>(D.Stats.LongPropagations),
        static_cast<unsigned long long>(D.Stats.ChronoBacktracks),
        static_cast<unsigned long long>(D.Stats.OutOfOrderAssignments),
        static_cast<unsigned long long>(D.Stats.TrailSavedLits),
        static_cast<unsigned long long>(D.Stats.XorPropagations),
        static_cast<unsigned long long>(D.Stats.XorConflicts),
        static_cast<unsigned long long>(D.Stats.XorEliminations), D.XorRows,
        static_cast<unsigned long long>(D.Stats.ArenaBytes),
        static_cast<unsigned long long>(D.Stats.WastedBytes),
        static_cast<unsigned long long>(D.Stats.Compactions),
        D.CnfVars, D.CnfClauses);
    Out << Buf << (I + 1 == Records.size() ? "\n" : ",\n");
  }
  Out << "  ],\n  \"metrics\": " << obs::Registry::global().snapshotJson()
      << "\n}\n";
  return static_cast<bool>(Out);
}

// -- Commands ----------------------------------------------------------------

int runListCodes() {
  const char *Names[] = {"repetition3", "repetition5",  "steane",
                         "five-qubit",  "six-qubit",    "surface3",
                         "surface5",    "xzzx3",        "reed-muller3",
                         "gottesman3",  "dodecacode",   "honeycomb",
                         "hgp98",       "tanner1",      "tanner1-full",
                         "tanner2",     "cube832",      "carbon",
                         "triorthogonal2", "campbell-howard2"};
  std::printf("%-20s %-34s n    k   d\n", "name", "construction");
  for (const char *Name : Names) {
    std::optional<StabilizerCode> Code = makeCodeByName(Name);
    if (!Code)
      continue;
    std::printf("%-20s %-34s %-4zu %-3zu %zu\n", Name, Code->Name.c_str(),
                Code->NumQubits, Code->NumLogical, Code->Distance);
  }
  return 0;
}

int runParse(const CliOptions &Cli) {
  std::ifstream In(Cli.ProgramFile);
  if (!In) {
    std::fprintf(stderr, "veriqec: cannot open %s\n",
                 Cli.ProgramFile.c_str());
    return 2;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  ParseResult PR = parseProgram(Buffer.str());
  if (auto *Err = std::get_if<ParseError>(&PR)) {
    std::fprintf(stderr, "veriqec: %s\n", Err->render().c_str());
    return 2;
  }
  StmtPtr Prog = Stmt::flatten(std::get<StmtPtr>(PR));
  std::printf("%s\n", Prog->toString(0).c_str());
  return 0;
}

std::optional<StmtPtr> loadProgramFile(const std::string &Path) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "veriqec: cannot open %s\n", Path.c_str());
    return std::nullopt;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  ParseResult PR = parseProgram(Buffer.str());
  if (auto *Err = std::get_if<ParseError>(&PR)) {
    std::fprintf(stderr, "veriqec: %s: %s\n", Path.c_str(),
                 Err->render().c_str());
    return std::nullopt;
  }
  return Stmt::flatten(std::get<StmtPtr>(PR));
}

int runVerify(const CliOptions &Cli) {
  std::vector<RunRecord> Records;
  std::vector<Scenario> Scenarios;
  for (const std::string &CodeName : Cli.Codes) {
    std::optional<StabilizerCode> Code = makeCodeByName(CodeName);
    if (!Code) {
      std::fprintf(stderr, "veriqec: unknown code '%s'\n", CodeName.c_str());
      return 2;
    }
    for (const std::string &ScenarioName : Cli.ScenarioNames) {
      for (LogicalBasis Basis : selectedBases(Cli)) {
        std::optional<Scenario> S =
            makeScenarioByName(*Code, ScenarioName, Basis, Cli);
        if (!S) {
          std::fprintf(stderr, "veriqec: unknown scenario '%s'\n",
                       ScenarioName.c_str());
          return 2;
        }
        if (!Cli.ProgramFile.empty()) {
          std::optional<StmtPtr> Prog = loadProgramFile(Cli.ProgramFile);
          if (!Prog)
            return 2;
          S->Program = *Prog;
          S->Name += "+" + Cli.ProgramFile;
        }
        RunRecord R;
        R.Code = CodeName;
        R.Scenario = ScenarioName;
        R.Basis = Basis == LogicalBasis::X ? "X" : "Z";
        R.NumQubits = S->NumQubits;
        Records.push_back(std::move(R));
        Scenarios.push_back(std::move(*S));
      }
    }
  }
  if (Scenarios.empty()) {
    std::fprintf(stderr, "veriqec: nothing selected (use --code)\n");
    return 2;
  }

  // Seeded suite shuffle: exercises different batch multiplexing orders
  // while keeping every run exactly reproducible from the seed.
  if (Cli.Seed && Scenarios.size() > 1) {
    Rng R(Cli.Seed);
    for (size_t I = Scenarios.size(); I-- > 1;) {
      size_t J = R.nextBelow(I + 1);
      std::swap(Scenarios[I], Scenarios[J]);
      std::swap(Records[I], Records[J]);
    }
  }

  VerifyOptions VO;
  VO.Parallel = !Cli.Sequential;
  VO.Threads = Cli.Jobs;
  VO.SplitThreshold = Cli.SplitThreshold;
  VO.CardEnc = Cli.CardEnc;
  VO.Preprocess = !Cli.NoPreprocess;
  VO.Xor = Cli.Xor;
  VO.Chrono = Cli.Chrono;
  VO.ConflictBudget = Cli.ConflictBudget;
  VO.RandomSeed = Cli.Seed;
  VO.LogProofs = Cli.CheckProofs || !Cli.ProofDir.empty();

  DistContext DC;
  if (!setupDist(Cli, DC))
    return 2;
  engine::VerificationEngine Engine(Cli.Jobs);
  std::vector<VerificationResult> Results =
      DC.Coord ? Engine.verifyAll(Scenarios, VO, *DC.Coord)
               : Engine.verifyAll(Scenarios, VO);
  for (size_t I = 0; I != Results.size(); ++I)
    Records[I].Result = std::move(Results[I]);

  bool AnyFailed = false, AnyError = false, AnyAborted = false;
  sat::SolverStats Total;
  double TotalSeconds = 0;
  for (const RunRecord &R : Records) {
    AnyError |= !R.Result.StructuralOk;
    // Aborted (budget-exhausted) runs are inconclusive, not refuted:
    // they get their own exit code so CI can tell "counterexample" from
    // "ran out of budget".
    AnyAborted |= R.Result.StructuralOk && R.Result.Aborted;
    AnyFailed |= R.Result.StructuralOk && !R.Result.Verified &&
                 !R.Result.Aborted;
    Total.Conflicts += R.Result.Stats.Conflicts;
    Total.Decisions += R.Result.Stats.Decisions;
    Total.BinPropagations += R.Result.Stats.BinPropagations;
    Total.LongPropagations += R.Result.Stats.LongPropagations;
    Total.XorPropagations += R.Result.Stats.XorPropagations;
    TotalSeconds += R.Result.Seconds;
  }

  // Publish the end-of-run totals into the metrics registry so
  // --bench-out and --metrics-out surface SolverStats and scheduler
  // counters through one named catalog alongside the hot-path
  // histograms.
  if (obs::metricsEnabled()) {
    obs::Registry &Reg = obs::Registry::global();
    Reg.counter("solver.conflicts").set(Total.Conflicts);
    Reg.counter("solver.decisions").set(Total.Decisions);
    Reg.counter("solver.propagations").set(Total.propagations());
    uint64_t Cubes = 0, Solved = 0, Pruned = 0;
    for (const RunRecord &R : Records) {
      Cubes += R.Result.NumCubes;
      Solved += R.Result.CubesSolved;
      Pruned += R.Result.CubesPruned;
    }
    Reg.counter("engine.cubes").set(Cubes);
    Reg.counter("engine.cubes_solved").set(Solved);
    Reg.counter("engine.cubes_pruned").set(Pruned);
    Reg.gauge("run.wall_ms").set(
        static_cast<uint64_t>(TotalSeconds * 1e3));
    if (DC.Coord) {
      const dist::CoordinatorStats &DS = DC.Coord->stats();
      Reg.counter("dist.batches_stolen").set(DS.BatchesStolen);
      Reg.counter("dist.batches_requeued").set(DS.BatchesRequeued);
      Reg.counter("dist.workers_dropped").set(DS.WorkersDropped);
      Reg.counter("dist.core_broadcasts").set(DS.CoreBroadcasts);
      Reg.counter("dist.heartbeats").set(DS.HeartbeatsReceived);
    }
  }

  size_t Workers = DC.Coord ? DC.Coord->numSlots() : Engine.numWorkers();
  if (Cli.Json) {
    std::printf("{\"seed\": %llu, \"results\": [\n",
                static_cast<unsigned long long>(Cli.Seed));
    for (size_t I = 0; I != Records.size(); ++I)
      printRecordJson(Records[I], I + 1 == Records.size());
    std::printf("]}\n");
  } else {
    for (const RunRecord &R : Records)
      printRecordText(R);
    if (Records.size() > 1)
      std::printf("batch: %zu scenarios, %.1f ms scenario-time total, "
                  "%llu conflicts, %zu workers%s\n",
                  Records.size(), TotalSeconds * 1e3,
                  static_cast<unsigned long long>(Total.Conflicts), Workers,
                  DC.Coord ? " (distributed slots)" : "");
    if (DC.Coord) {
      const dist::CoordinatorStats &DS = DC.Coord->stats();
      std::printf("dist: %zu workers, %zu slots, %llu stolen, %llu "
                  "requeued, %llu dropped, %llu core broadcasts, "
                  "%llu heartbeats\n",
                  DC.Coord->numWorkers(), DC.Coord->numSlots(),
                  static_cast<unsigned long long>(DS.BatchesStolen),
                  static_cast<unsigned long long>(DS.BatchesRequeued),
                  static_cast<unsigned long long>(DS.WorkersDropped),
                  static_cast<unsigned long long>(DS.CoreBroadcasts),
                  static_cast<unsigned long long>(DS.HeartbeatsReceived));
    }
  }
  if (!Cli.BenchOut.empty() && !writeBenchOut(Cli, Records, Workers))
    return 2;

  if (Cli.CheckProofs || !Cli.ProofDir.empty()) {
    size_t Checked = 0;
    for (const RunRecord &R : Records) {
      if (!R.Result.StructuralOk || !R.Result.Verified)
        continue; // SAT/aborted verdicts are witnessed by models, not proofs
      if (handleProof(Cli, R.Code + "-" + R.Scenario + "-" + R.Basis,
                      R.Result.Proof))
        return 2;
      ++Checked;
    }
    if (Cli.CheckProofs && !Cli.Json)
      std::printf("proofs: %zu UNSAT verdict(s), all proofs check\n", Checked);
  }
  return AnyError ? 2 : AnyFailed ? 1 : AnyAborted ? 3 : 0;
}

int runDistance(const CliOptions &Cli) {
  bool AnyMismatch = false, AnyAborted = false, AnyError = false;
  bool AnyProofFailed = false;
  DistContext DC;
  if (!setupDist(Cli, DC))
    return 2;
  dist::Coordinator *Remote = DC.Coord.get();
  std::vector<DistanceRecord> Records;
  if (Cli.Json)
    std::printf("{\"seed\": %llu, \"results\": [\n",
                static_cast<unsigned long long>(Cli.Seed));
  for (size_t I = 0; I != Cli.Codes.size(); ++I) {
    const std::string &CodeName = Cli.Codes[I];
    std::optional<StabilizerCode> Code = makeCodeByName(CodeName);
    if (!Code) {
      std::fprintf(stderr, "veriqec: unknown code '%s'\n", CodeName.c_str());
      return 2;
    }
    VerifyOptions VO;
    VO.Preprocess = !Cli.NoPreprocess;
    VO.Xor = Cli.Xor;
    VO.Chrono = Cli.Chrono;
    VO.ConflictBudget = Cli.ConflictBudget;
    VO.RandomSeed = Cli.Seed;
    VO.LogProofs = Cli.CheckProofs || !Cli.ProofDir.empty();
    DistanceResult R = computeDistance(*Code, VO, PauliFamily::Any, Remote);
    Records.push_back({CodeName, Code->NumQubits, R});
    AnyAborted |= R.Aborted;
    AnyError |= !R.Ok && !R.Aborted;
    // A registry distance flagged as an estimate is not binding: report
    // the difference (the printed "estimate" qualifier says why) but do
    // not fail the run over it.
    bool Mismatch = R.Ok && Code->Distance && !Code->DistanceIsEstimate &&
                    R.Distance != Code->Distance;
    // Some registry entries document a restricted-error-family distance
    // (repetition<N> documents the bit-flip distance, reached by pure-X
    // logicals only); accept the documented number if a family-
    // restricted search attains it.
    std::string FamilyMatch;
    if (Mismatch) {
      for (auto [Family, Name] :
           {std::pair{PauliFamily::XOnly, "x"},
            std::pair{PauliFamily::ZOnly, "z"}}) {
        DistanceResult F = computeDistance(*Code, VO, Family, Remote);
        if (F.Ok && F.Distance == Code->Distance) {
          Mismatch = false;
          FamilyMatch = Name;
          break;
        }
      }
    }
    AnyMismatch |= Mismatch;
    if (Cli.Json) {
      std::printf(
          "%s  {\"code\": \"%s\", \"ok\": %s, \"aborted\": %s, "
          "\"distance\": %zu, \"documented\": %zu, \"matches\": %s, "
          "\"solver_calls\": %llu, \"conflicts\": %llu, \"seconds\": %.6f",
          I ? ",\n" : "", jsonEscape(CodeName).c_str(), R.Ok ? "true" : "false",
          R.Aborted ? "true" : "false", R.Distance, Code->Distance,
          // A failed or aborted search agrees with nothing.
          R.Ok && !Mismatch ? "true" : "false",
          static_cast<unsigned long long>(R.SolverCalls),
          static_cast<unsigned long long>(R.Stats.Conflicts), R.Seconds);
      if (!FamilyMatch.empty())
        std::printf(", \"documented_family\": \"%s\"", FamilyMatch.c_str());
      if (R.Witness)
        std::printf(", \"witness\": \"%s\"",
                    jsonEscape(R.Witness->toString()).c_str());
      std::printf("}");
    } else if (!R.Ok && !R.Aborted) {
      std::printf("%-20s ERROR: %s\n", CodeName.c_str(), R.Error.c_str());
    } else {
      // When the documented number belongs to a restricted family, say
      // so: "distance 1 (documented 5)" with a silent success would
      // read as a contradiction.
      std::string Documented = std::to_string(Code->Distance);
      if (!FamilyMatch.empty())
        Documented += " = " + FamilyMatch + "-family";
      if (Code->DistanceIsEstimate)
        Documented += ", estimate";
      std::printf("%-20s distance %-3zu %s(documented %s)  %llu calls, "
                  "%llu conflicts  (%.1f ms)\n",
                  CodeName.c_str(), R.Distance,
                  R.Aborted ? "ABORTED " : Mismatch ? "MISMATCH " : "",
                  Documented.c_str(),
                  static_cast<unsigned long long>(R.SolverCalls),
                  static_cast<unsigned long long>(R.Stats.Conflicts),
                  R.Seconds * 1e3);
      if (R.Witness)
        std::printf("  minimal logical operator: %s\n",
                    R.Witness->toString().c_str());
    }
    if ((Cli.CheckProofs || !Cli.ProofDir.empty()) && R.Ok) {
      // A distance-1 search can conclude from SAT probes alone (no UNSAT
      // probe, hence legitimately no proof); any deeper verdict must
      // prove every weight below the distance impossible.
      if (R.Distance > 1 || !R.Proof.empty())
        AnyProofFailed |= handleProof(Cli, CodeName + "-distance", R.Proof) != 0;
    }
  }
  if (Cli.Json)
    std::printf("\n]}\n");
  if (!Cli.BenchOut.empty() && !writeDistanceBenchOut(Cli, Records))
    return 2;
  if (Cli.CheckProofs && !Cli.Json && !AnyProofFailed)
    std::printf("proofs: all distance certificates check\n");
  return AnyError || AnyProofFailed ? 2
         : AnyMismatch              ? 1
         : AnyAborted               ? 3
                                    : 0;
}

int runDetect(const CliOptions &Cli) {
  bool AnyMisses = false, AnyAborted = false;
  bool First = true;
  if (Cli.Json)
    std::printf("{\"seed\": %llu, \"results\": [\n",
                static_cast<unsigned long long>(Cli.Seed));
  for (size_t I = 0; I != Cli.Codes.size(); ++I) {
    const std::string &CodeName = Cli.Codes[I];
    std::optional<StabilizerCode> Code = makeCodeByName(CodeName);
    if (!Code) {
      std::fprintf(stderr, "veriqec: unknown code '%s'\n", CodeName.c_str());
      return 2;
    }
    size_t MaxWeight =
        Cli.MaxWeight ? Cli.MaxWeight
                      : (Code->Distance >= 2 ? Code->Distance - 1 : 1);
    VerifyOptions VO;
    VO.Parallel = !Cli.Sequential;
    VO.Threads = Cli.Jobs;
    VO.SplitThreshold = Cli.SplitThreshold;
    VO.CardEnc = Cli.CardEnc;
    VO.Preprocess = !Cli.NoPreprocess;
    VO.Xor = Cli.Xor;
    VO.Chrono = Cli.Chrono;
    VO.ConflictBudget = Cli.ConflictBudget;
    VO.RandomSeed = Cli.Seed;
    DetectionResult R = verifyDetection(*Code, MaxWeight, VO);
    AnyAborted |= R.Aborted;
    AnyMisses |= !R.Detects && !R.Aborted;
    if (Cli.Json) {
      std::printf("%s  {\"code\": \"%s\", \"max_weight\": %zu, "
                  "\"detects\": %s, \"aborted\": %s, \"seconds\": %.6f%s}",
                  First ? "" : ",\n", jsonEscape(CodeName).c_str(), MaxWeight,
                  R.Detects ? "true" : "false", R.Aborted ? "true" : "false",
                  R.Seconds,
                  R.CounterExample
                      ? (", \"counterexample\": \"" +
                         jsonEscape(R.CounterExample->toString()) + "\"")
                            .c_str()
                      : "");
      First = false;
    } else {
      std::printf("%-20s weight<=%zu  %s  (%.1f ms)\n", CodeName.c_str(),
                  MaxWeight,
                  R.Aborted   ? "ABORTED"
                  : R.Detects ? "DETECTS"
                              : "MISSES",
                  R.Seconds * 1e3);
      if (R.CounterExample)
        std::printf("  undetected logical operator: %s\n",
                    R.CounterExample->toString().c_str());
    }
  }
  if (Cli.Json)
    std::printf("\n]}\n");
  return AnyMisses ? 1 : AnyAborted ? 3 : 0;
}

int runWorkerCommand(const CliOptions &Cli) {
  if (Cli.Connect.empty()) {
    std::fprintf(stderr, "veriqec: worker needs --connect HOST:PORT\n");
    return 2;
  }
  // A malformed address can never succeed: fail before the retry loop.
  std::string Err;
  if (!dist::validTcpAddress(Cli.Connect, /*AllowPortZero=*/false, Err)) {
    std::fprintf(stderr, "veriqec: %s\n", Err.c_str());
    return 2;
  }
  // Retry the connect: CI starts coordinator and workers concurrently.
  std::unique_ptr<dist::Link> L;
  for (int Attempt = 0; Attempt != 50 && !L; ++Attempt) {
    L = dist::connectTcp(Cli.Connect, Err);
    if (!L)
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  if (!L) {
    std::fprintf(stderr, "veriqec: cannot connect to %s: %s\n",
                 Cli.Connect.c_str(), Err.c_str());
    return 2;
  }
  dist::WorkerOptions WO;
  WO.Jobs = Cli.Jobs ? Cli.Jobs : 1;
  WO.MaxBatches = Cli.MaxBatches;
  WO.HeartbeatMs = Cli.HeartbeatMs;
  std::fprintf(stderr, "veriqec: worker connected to %s (%zu slot%s)\n",
               Cli.Connect.c_str(), WO.Jobs, WO.Jobs == 1 ? "" : "s");
  int R = dist::runWorker(std::move(L), WO);
  // The MaxBatches crash hook (R == 2) did exactly what was asked; a
  // handshake/link failure (R == 1) is a real error. An eviction (R ==
  // 3) keeps its distinct code: the run continued elsewhere, but an
  // operator (or CI) may want to know this node was written off.
  if (R == 3)
    std::fprintf(stderr, "veriqec: worker evicted by coordinator\n");
  return R == 1 ? 1 : R == 3 ? 3 : 0;
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Cli;
  std::vector<std::string> Args(Argv + 1, Argv + Argc);
  if (Args.empty()) {
    printUsage(stderr);
    return 2;
  }
  Cli.Command = Args[0];

  auto needValue = [&](size_t &I) -> const std::string * {
    if (I + 1 >= Args.size()) {
      std::fprintf(stderr, "veriqec: %s needs a value\n", Args[I].c_str());
      return nullptr;
    }
    return &Args[++I];
  };

  for (size_t I = 1; I < Args.size(); ++I) {
    const std::string &A = Args[I];
    const std::string *V = nullptr;
    if (A == "--json") {
      Cli.Json = true;
    } else if (A == "--sequential") {
      Cli.Sequential = true;
    } else if (A == "--no-preprocess") {
      Cli.NoPreprocess = true;
    } else if (A == "--xor") {
      if (!(V = needValue(I)))
        return 2;
      if (*V == "on")
        Cli.Xor = smt::XorMode::On;
      else if (*V == "off")
        Cli.Xor = smt::XorMode::Off;
      else {
        std::fprintf(stderr, "veriqec: --xor must be on or off\n");
        return 2;
      }
    } else if (A == "--chrono") {
      if (!(V = needValue(I)))
        return 2;
      if (*V == "on")
        Cli.Chrono = smt::ChronoMode::On;
      else if (*V == "off")
        Cli.Chrono = smt::ChronoMode::Off;
      else if (*V == "auto")
        Cli.Chrono = smt::ChronoMode::Auto;
      else {
        std::fprintf(stderr, "veriqec: --chrono must be on, off or auto\n");
        return 2;
      }
    } else if (A == "--bench-out") {
      if (!(V = needValue(I)))
        return 2;
      Cli.BenchOut = *V;
    } else if (A == "--check-proofs") {
      Cli.CheckProofs = true;
    } else if (A == "--proof-dir") {
      if (!(V = needValue(I)))
        return 2;
      Cli.ProofDir = *V;
    } else if (A == "--dist") {
      if (!(V = needValue(I)))
        return 2;
      Cli.Dist = *V;
    } else if (A == "--listen") {
      if (!(V = needValue(I)))
        return 2;
      Cli.Listen = *V;
    } else if (A == "--connect") {
      if (!(V = needValue(I)))
        return 2;
      Cli.Connect = *V;
    } else if (A == "--expect-workers") {
      if (!(V = needValue(I)))
        return 2;
      Cli.ExpectWorkers = std::strtoul(V->c_str(), nullptr, 10);
      if (Cli.ExpectWorkers == 0) {
        std::fprintf(stderr, "veriqec: --expect-workers must be >= 1\n");
        return 2;
      }
    } else if (A == "--max-batches") {
      if (!(V = needValue(I)))
        return 2;
      Cli.MaxBatches = std::strtoull(V->c_str(), nullptr, 10);
    } else if (A == "--heartbeat-ms") {
      if (!(V = needValue(I)))
        return 2;
      Cli.HeartbeatMs =
          static_cast<int>(std::strtol(V->c_str(), nullptr, 10));
      if (Cli.HeartbeatMs < 0) {
        std::fprintf(stderr, "veriqec: --heartbeat-ms must be >= 0\n");
        return 2;
      }
    } else if (A == "--trace") {
      if (!(V = needValue(I)))
        return 2;
      Cli.TraceOut = *V;
    } else if (A == "--metrics-out") {
      if (!(V = needValue(I)))
        return 2;
      Cli.MetricsOut = *V;
    } else if (A == "--progress") {
      Cli.Progress = true;
    } else if (A == "--code") {
      if (!(V = needValue(I)))
        return 2;
      if (!splitList(*V, Cli.Codes)) {
        std::fprintf(stderr, "veriqec: --code needs a non-empty list\n");
        return 2;
      }
    } else if (A == "--scenario") {
      if (!(V = needValue(I)))
        return 2;
      if (!splitList(*V, Cli.ScenarioNames)) {
        std::fprintf(stderr, "veriqec: --scenario needs a non-empty list\n");
        return 2;
      }
    } else if (A == "--suite") {
      if (!(V = needValue(I)))
        return 2;
      Cli.Suite = *V;
    } else if (A == "--program") {
      if (!(V = needValue(I)))
        return 2;
      Cli.ProgramFile = *V;
    } else if (A == "--error") {
      if (!(V = needValue(I)))
        return 2;
      if (*V == "X")
        Cli.ErrorKind = PauliKind::X;
      else if (*V == "Y")
        Cli.ErrorKind = PauliKind::Y;
      else if (*V == "Z")
        Cli.ErrorKind = PauliKind::Z;
      else {
        std::fprintf(stderr, "veriqec: --error must be X, Y or Z\n");
        return 2;
      }
    } else if (A == "--basis") {
      if (!(V = needValue(I)))
        return 2;
      if (*V != "Z" && *V != "X" && *V != "both") {
        std::fprintf(stderr, "veriqec: --basis must be Z, X or both\n");
        return 2;
      }
      Cli.Basis = *V;
    } else if (A == "--max-errors") {
      if (!(V = needValue(I)))
        return 2;
      Cli.MaxErrors =
          static_cast<uint32_t>(std::strtoul(V->c_str(), nullptr, 10));
    } else if (A == "--cycles") {
      if (!(V = needValue(I)))
        return 2;
      Cli.Cycles = std::strtoul(V->c_str(), nullptr, 10);
    } else if (A == "--max-weight") {
      if (!(V = needValue(I)))
        return 2;
      Cli.MaxWeight = std::strtoul(V->c_str(), nullptr, 10);
    } else if (A == "--jobs") {
      if (!(V = needValue(I)))
        return 2;
      Cli.Jobs = std::strtoul(V->c_str(), nullptr, 10);
    } else if (A == "--split-threshold") {
      if (!(V = needValue(I)))
        return 2;
      Cli.SplitThreshold =
          static_cast<uint32_t>(std::strtoul(V->c_str(), nullptr, 10));
    } else if (A == "--budget") {
      if (!(V = needValue(I)))
        return 2;
      Cli.ConflictBudget = std::strtoull(V->c_str(), nullptr, 10);
    } else if (A == "--seed") {
      if (!(V = needValue(I)))
        return 2;
      Cli.Seed = std::strtoull(V->c_str(), nullptr, 10);
    } else if (A == "--card-enc") {
      if (!(V = needValue(I)))
        return 2;
      if (*V == "seq")
        Cli.CardEnc = smt::CardinalityEncoding::SequentialCounter;
      else if (*V == "pairwise")
        Cli.CardEnc = smt::CardinalityEncoding::PairwiseNaive;
      else {
        std::fprintf(stderr, "veriqec: --card-enc must be seq or pairwise\n");
        return 2;
      }
    } else if (A == "--help" || A == "-h") {
      printUsage(stdout);
      return 0;
    } else if (Cli.Command == "parse" && Cli.ProgramFile.empty() &&
               A[0] != '-') {
      Cli.ProgramFile = A;
    } else {
      std::fprintf(stderr, "veriqec: unknown option '%s'\n", A.c_str());
      printUsage(stderr);
      return 2;
    }
  }

  if (!expandSuite(Cli)) {
    std::fprintf(stderr, "veriqec: unknown suite '%s'\n", Cli.Suite.c_str());
    return 2;
  }

  if (!Cli.BenchOut.empty() && Cli.Command != "verify" &&
      Cli.Command != "distance") {
    // Refuse rather than silently not writing the file a CI step will
    // try to parse.
    std::fprintf(stderr, "veriqec: --bench-out is only supported by the "
                         "verify and distance commands\n");
    return 2;
  }
  if ((Cli.CheckProofs || !Cli.ProofDir.empty()) && Cli.Command != "verify" &&
      Cli.Command != "distance" && Cli.Command != "serve") {
    // Same policy: a CI proof gate that silently never checked anything
    // would be worse than an error.
    std::fprintf(stderr, "veriqec: --check-proofs/--proof-dir are only "
                         "supported by the verify and distance commands\n");
    return 2;
  }

  if (Cli.Command == "list-codes")
    return runListCodes();
  if (Cli.Command == "parse") {
    if (Cli.ProgramFile.empty()) {
      std::fprintf(stderr, "veriqec: parse needs a file\n");
      return 2;
    }
    return runParse(Cli);
  }
  if (!Cli.Dist.empty() && Cli.Command != "verify" &&
      Cli.Command != "distance") {
    std::fprintf(stderr, "veriqec: --dist is only supported by the verify "
                         "and distance commands\n");
    return 2;
  }

  // Observability switches gate the instrumentation for the whole run:
  // tracing records phase spans, metrics feed --metrics-out and the
  // bench-out metrics block, progress renders the live stderr line.
  if (!Cli.TraceOut.empty())
    obs::beginTrace();
  if (!Cli.MetricsOut.empty() || !Cli.BenchOut.empty())
    obs::setMetricsEnabled(true);
  if (Cli.Progress)
    obs::setProgressEnabled(true);

  int Code = 2;
  if (Cli.Command == "verify" || Cli.Command == "serve")
    Code = runVerify(Cli);
  else if (Cli.Command == "worker")
    Code = runWorkerCommand(Cli);
  else if (Cli.Command == "detect") {
    if (Cli.Codes.empty()) {
      std::fprintf(stderr, "veriqec: detect needs --code\n");
      return 2;
    }
    Code = runDetect(Cli);
  } else if (Cli.Command == "distance") {
    if (Cli.Codes.empty()) {
      std::fprintf(stderr, "veriqec: distance needs --code\n");
      return 2;
    }
    Code = runDistance(Cli);
  } else {
    std::fprintf(stderr, "veriqec: unknown command '%s'\n",
                 Cli.Command.c_str());
    printUsage(stderr);
    return 2;
  }

  if (!Cli.TraceOut.empty()) {
    std::string Err;
    if (!obs::endTrace(Cli.TraceOut, Err)) {
      std::fprintf(stderr, "veriqec: %s\n", Err.c_str());
      Code = Code ? Code : 2;
    }
  }
  if (!Cli.MetricsOut.empty()) {
    std::ofstream MOut(Cli.MetricsOut);
    MOut << obs::Registry::global().snapshotJson() << "\n";
    if (!MOut) {
      std::fprintf(stderr, "veriqec: cannot write %s\n",
                   Cli.MetricsOut.c_str());
      Code = Code ? Code : 2;
    }
  }
  return Code;
}
